"""Cluster-scale serving tests: parity, properties, failover, sharding.

The cluster simulator's contract is test-enforced (this PR's archetype):

* a 1-replica unsharded :class:`~repro.cluster.ClusterScheduler` must be
  numerically equivalent to a bare ``RequestScheduler`` run (1e-9);
* request conservation and same-seed determinism must hold over seeded
  randomized streams for every routing policy, including under replica
  failure mid-flight;
* power-of-two-choices must never yield a worse max queue depth than
  round-robin on skewed streams;
* killing a replica via a device-level :class:`FaultPlan` re-routes its
  in-flight requests, with counters and ledger slices matching the event
  log.
"""

import numpy as np
import pytest

from repro import obs
from repro.baselines import wimpy_host
from repro.cluster import (
    ROUTER_POLICIES,
    ClusterScheduler,
    ReplicaFailure,
    RoundRobinRouter,
    SessionAffinityRouter,
    ShardPlan,
    ShardedCostModel,
    cluster_load_sweep,
    failures_from_fault_plan,
    make_router,
)
from repro.cluster.routing import ReplicaLoad
from repro.engine import (
    GenerationServer,
    Request,
    RequestScheduler,
    SchedulerPolicy,
    poisson_requests,
)
from repro.pim import get_platform
from repro.resilience import FaultInjector, FaultPlan, RecoveryManager
from repro.workloads import opt_style

TOL = 1e-9


@pytest.fixture(scope="module")
def config():
    return opt_style(256, seq_len=64, batch_size=1).with_(num_layers=2)


@pytest.fixture(scope="module")
def server(config):
    return GenerationServer(get_platform("upmem"), wimpy_host())


@pytest.fixture(scope="module")
def reference(server, config):
    return RequestScheduler(server, config)


@pytest.fixture(scope="module")
def service_s(reference):
    probe = Request(request_id=-1, arrival_s=0.0, prompt_len=64,
                    generate_len=16)
    return reference.fifo_service_time(probe)


@pytest.fixture(scope="module")
def cost(reference):
    # One memoized cost model shared by every cluster in the module keeps
    # the suite fast; costs are pure functions, so sharing is sound.
    return reference.cost


def _stream(service_s, n=32, rho=1.2, seed=0, **kwargs):
    kwargs.setdefault("prompt_len", 64)
    kwargs.setdefault("generate_len", 16)
    return poisson_requests(n, rho / service_s, seed=seed, **kwargs)


# ----------------------------------------------------------------------
# Satellite 1: 1-replica parity with the bare RequestScheduler
# ----------------------------------------------------------------------
class TestSingleReplicaParity:
    PERCENTILE_FIELDS = (
        "ttft_p50_s", "ttft_p95_s", "ttft_p99_s",
        "tpot_p50_s", "tpot_p95_s", "tpot_p99_s",
        "e2e_p50_s", "e2e_p95_s", "e2e_p99_s", "mean_e2e_s",
    )

    @pytest.mark.parametrize("seed", [0, 7, 23])
    def test_percentiles_and_goodput_match(self, server, config, reference,
                                           service_s, cost, seed):
        stream = _stream(service_s, n=40, rho=1.3, seed=seed)
        base = reference.run(stream)
        cluster = ClusterScheduler(server, config, replicas=1, shards=1,
                                   cost_model=cost)
        res = cluster.run(stream)
        for name in self.PERCENTILE_FIELDS:
            assert abs(getattr(res, name) - getattr(base, name)) <= TOL, name
        assert abs(res.goodput_rps - base.goodput_rps) <= TOL
        assert abs(res.throughput_rps - base.throughput_rps) <= TOL
        assert abs(res.makespan_s - base.makespan_s) <= TOL
        assert abs(res.busy_s - base.busy_s) <= TOL
        assert res.completed == base.completed
        assert res.rejected == base.rejected
        assert res.steps == base.steps
        assert res.prefill_tokens == base.prefill_tokens
        assert res.generated_tokens == base.generated_tokens

    def test_parity_with_slo_policy_and_rejections(self, server, config,
                                                   service_s, cost):
        policy = SchedulerPolicy(max_batch_size=2, max_queue_len=4,
                                 slo_ttft_s=0.05, slo_e2e_s=0.3)
        stream = _stream(service_s, n=48, rho=3.0, seed=11)
        base = RequestScheduler(server, config, policy=policy)
        base.cost = cost
        expect = base.run(stream)
        res = ClusterScheduler(server, config, replicas=1, policy=policy,
                               cost_model=cost).run(stream)
        assert res.rejected == expect.rejected and expect.rejected > 0
        assert abs(res.goodput_rps - expect.goodput_rps) <= TOL
        assert abs(res.e2e_p95_s - expect.e2e_p95_s) <= TOL

    def test_per_request_stats_match(self, server, config, reference,
                                     service_s, cost):
        stream = _stream(service_s, n=24, seed=3)
        base = {s.request_id: s for s in reference.run(stream).requests}
        res = ClusterScheduler(server, config, replicas=1,
                               cost_model=cost).run(stream)
        assert len(res.requests) == len(base)
        for c in res.requests:
            assert c.replica == 0 and c.failovers == 0
            assert c.stats == base[c.request_id]


# ----------------------------------------------------------------------
# Satellite 2: property tests over seeded randomized streams
# ----------------------------------------------------------------------
class TestConservation:
    @pytest.mark.parametrize("seed", range(20))
    def test_every_request_completed_once_or_shed(self, server, config,
                                                  service_s, cost, seed):
        rng = np.random.default_rng(seed)
        stream = _stream(service_s, n=30, rho=1.0 + rng.uniform(0, 1.5),
                         seed=seed,
                         prompt_len=[32, 64, 128], generate_len=[4, 16, 32])
        # Kill one replica mid-stream: at a stream-dependent instant so the
        # failure lands among in-flight requests.
        t_kill = float(sorted(r.arrival_s for r in stream)[len(stream) // 2])
        router = list(ROUTER_POLICIES)[seed % len(ROUTER_POLICIES)]
        cluster = ClusterScheduler(
            server, config, replicas=3, router=router, seed=seed,
            failures=[ReplicaFailure(seed % 3, t_kill)], cost_model=cost,
        )
        res = cluster.run(stream)

        assert res.completed + res.rejected + res.shed == len(stream)
        seen = sorted(c.request_id for c in res.requests)
        assert seen == sorted(r.request_id for r in stream)
        for c in res.requests:
            if c.shed:
                assert c.stats.rejected
            else:
                assert 0 <= c.replica < 3
        # Failover accounting matches the event log exactly.
        failover_events = [e for e in res.events if e["kind"] == "failover"]
        assert res.failovers == len(failover_events)
        assert res.failovers == sum(c.failovers for c in res.requests)
        shed_events = [e for e in res.events if e["kind"] == "shed"]
        assert res.shed == len(shed_events)

    def test_duplicate_request_ids_rejected(self, server, config, cost):
        twin = [Request(request_id=1, arrival_s=0.0, prompt_len=8,
                        generate_len=2),
                Request(request_id=1, arrival_s=0.1, prompt_len=8,
                        generate_len=2)]
        cluster = ClusterScheduler(server, config, replicas=2,
                                   cost_model=cost)
        with pytest.raises(ValueError, match="unique"):
            cluster.run(twin)


class TestDeterminism:
    @pytest.mark.parametrize("router", sorted(ROUTER_POLICIES))
    @pytest.mark.parametrize("seed", [0, 5, 9, 13, 17])
    def test_same_seed_same_result(self, server, config, service_s, cost,
                                   router, seed):
        stream = _stream(service_s, n=24, rho=1.4, seed=seed, sessions=5)
        runs = []
        for _ in range(2):
            cluster = ClusterScheduler(
                server, config, replicas=3, router=router, seed=seed,
                failures=[ReplicaFailure(1, stream[8].arrival_s)],
                cost_model=cost,
            )
            runs.append(cluster.run(stream))
        a, b = runs
        assert a.to_jsonable() == b.to_jsonable()
        assert [(c.replica, c.failovers, c.stats) for c in a.requests] == \
               [(c.replica, c.failovers, c.stats) for c in b.requests]


class TestPowerOfTwoChoices:
    @pytest.mark.parametrize("replicas", [2, 3])
    def test_never_worse_max_depth_than_round_robin(self, server, config,
                                                    service_s, cost,
                                                    replicas):
        # Heavy-tailed sizes: round-robin blindly stripes behind the huge
        # requests, p2c sees queue depth and avoids them.
        for seed in range(24):
            stream = poisson_requests(
                40, 1.6 * replicas / 2 / service_s,
                prompt_len=[16, 32, 512], generate_len=[2, 8, 64], seed=seed,
            )
            depth = {}
            for router in ("p2c", "round-robin"):
                cluster = ClusterScheduler(
                    server, config, replicas=replicas, router=router,
                    seed=seed, cost_model=cost,
                )
                depth[router] = cluster.run(stream).max_queue_depth
            assert depth["p2c"] <= depth["round-robin"], seed


class TestRoutingPolicies:
    def test_round_robin_skips_dead_replicas(self):
        router = RoundRobinRouter()
        router.reset(4)
        req = Request(request_id=0, arrival_s=0.0, prompt_len=8,
                      generate_len=1)
        picks = [router.choose(req, [0, 2, 3], []) for _ in range(6)]
        assert picks == [0, 2, 3, 0, 2, 3]

    def test_session_affinity_is_sticky_and_stable_under_failure(self):
        router = SessionAffinityRouter()
        alive = [0, 1, 2, 3]
        loads = []

        def req(session, rid=0):
            return Request(request_id=rid, arrival_s=0.0, prompt_len=8,
                           generate_len=1, session=session)

        homes = {s: router.choose(req(s), alive, loads) for s in range(32)}
        # Sticky: the same session always lands on the same replica.
        for s, home in homes.items():
            assert router.choose(req(s, rid=99), alive, loads) == home
        # Minimal disruption: removing replica 1 only re-homes replica 1's
        # sessions; everyone else stays put (rendezvous hashing).
        survivors = [0, 2, 3]
        for s, home in homes.items():
            rehomed = router.choose(req(s), survivors, loads)
            if home != 1:
                assert rehomed == home
            else:
                assert rehomed in survivors

    def test_make_router_rejects_unknown_policy(self):
        with pytest.raises(ValueError, match="unknown routing policy"):
            make_router("random")

    def test_least_loaded_prefers_smallest_backlog(self):
        router = make_router("least-loaded")
        req = Request(request_id=0, arrival_s=0.0, prompt_len=8,
                      generate_len=1)
        loads = [ReplicaLoad(0, 4, 2.0), ReplicaLoad(1, 1, 0.5),
                 ReplicaLoad(2, 2, 1.0)]
        assert router.choose(req, [0, 1, 2], loads) == 1


# ----------------------------------------------------------------------
# Satellite 3: failover driven by a device-level FaultPlan
# ----------------------------------------------------------------------
class TestFailover:
    def test_fault_plan_kills_replica_and_reroutes(self, config, service_s):
        platform = get_platform("upmem")
        server = GenerationServer(platform, wimpy_host())
        obs.reset()
        stream = _stream(service_s, n=30, rho=2.5, seed=4)
        # Kill just after an arrival that round-robin sends to replica 0
        # (even index in arrival order), so work is mid-flight for sure.
        ordered = sorted(stream, key=lambda r: (r.arrival_s, r.request_id))
        t_kill = ordered[10].arrival_s + 1e-6
        plan = FaultPlan(failed_ranks=(3,))  # rank 3 lives in replica 0's pool
        failures = failures_from_fault_plan(plan, t_kill, platform.ranks)
        assert failures == [ReplicaFailure(0, t_kill, plan)]

        cluster = ClusterScheduler(server, config, replicas=2,
                                   failures=failures)
        res = cluster.run(stream)

        assert res.replica_failed_at == (t_kill, None)
        assert res.failovers > 0 and res.shed == 0
        assert res.completed + res.rejected == len(stream)
        # Re-routed requests completed on the surviving replica and their
        # latencies span the failure (original arrival is preserved).
        moved = [c for c in res.requests if c.failovers]
        assert moved and all(c.replica == 1 for c in moved)
        for c in moved:
            assert c.stats.finished_s > t_kill
            assert c.stats.arrival_s <= t_kill
        # Counters match the event log.
        snapshot = obs.get_registry().snapshot()
        failover_events = [e for e in res.events if e["kind"] == "failover"]
        assert snapshot["cluster.failovers"]["value"] == len(failover_events)
        assert snapshot["cluster.replica_failures"]["value"] == 1
        fail_events = [e for e in res.events if e["kind"] == "replica_failed"]
        assert fail_events[0]["fault_plan"] == plan.to_dict()
        obs.reset()

    def test_all_replicas_dead_sheds_remaining(self, server, config,
                                               service_s, cost):
        stream = _stream(service_s, n=20, rho=1.0, seed=2)
        t_kill = stream[6].arrival_s
        cluster = ClusterScheduler(
            server, config, replicas=2, cost_model=cost,
            failures=[ReplicaFailure(0, t_kill), ReplicaFailure(1, t_kill)],
        )
        res = cluster.run(stream)
        assert res.shed > 0
        assert res.completed + res.rejected + res.shed == len(stream)
        for c in res.requests:
            if c.shed:
                assert c.stats.rejected and c.replica == -1

    def test_degradation_slices_nest_cluster_over_replicas(self, config,
                                                           service_s):
        manager = RecoveryManager(FaultInjector(FaultPlan(failed_ranks=(0,))))
        server = GenerationServer(
            get_platform("upmem"), wimpy_host(), resilience=manager
        )
        stream = _stream(service_s, n=10, rho=0.8, seed=1)
        res = ClusterScheduler(server, config, replicas=2).run(stream)
        # The cluster scope encloses every replica scope: its slice is at
        # least each replica's slice, and the ladder did engage.
        assert res.degradation is not None and res.degradation.degraded
        for replica_result in res.replica_results:
            assert replica_result.degradation is not None
            assert res.degradation.remaps >= replica_result.degradation.remaps

    def test_failure_validation(self, server, config, cost):
        with pytest.raises(ValueError, match="targets replica"):
            ClusterScheduler(server, config, replicas=2, cost_model=cost,
                             failures=[ReplicaFailure(5, 1.0)])
        with pytest.raises(ValueError, match="duplicate"):
            ClusterScheduler(server, config, replicas=2, cost_model=cost,
                             failures=[ReplicaFailure(0, 1.0),
                                       ReplicaFailure(0, 2.0)])


# ----------------------------------------------------------------------
# Tentpole: sharding with explicit inter-node transfer costs
# ----------------------------------------------------------------------
class TestSharding:
    def test_shard_plan_splits_layers_near_evenly(self, config):
        plan = ShardPlan(config.with_(num_layers=7), shards=3,
                         interconnect=get_platform("upmem").scatter)
        assert plan.shard_layers == (3, 2, 2)
        assert sum(plan.shard_layers) == 7
        assert plan.boundaries == 2

    def test_transfer_cost_uses_bandwidth_model(self, config):
        platform = get_platform("upmem")
        plan = ShardPlan(config.with_(num_layers=4), shards=2,
                         interconnect=platform.scatter,
                         activation_dtype_bytes=4)
        tokens = 64
        expected = platform.scatter.latency(tokens * config.hidden_dim * 4)
        assert plan.transfer_s(tokens) == pytest.approx(expected)
        assert plan.transfer_s(0) == 0.0

    def test_sharded_cost_exceeds_unsharded_by_transfers(self, server,
                                                         config, cost):
        plan = ShardPlan(config, shards=2,
                         interconnect=server.platform.scatter,
                         activation_dtype_bytes=4)
        sharded = ShardedCostModel(server, plan)
        base_prefill = cost.prefill_s(64, 1)
        sharded_prefill = sharded.prefill_s(64, 1)
        assert sharded_prefill > base_prefill
        phases = sharded.prefill_phases(64, 1)
        assert phases["shard_transfer"] == pytest.approx(plan.transfer_s(64))
        decode_phases = sharded.decode_step_phases(4, 100)
        assert decode_phases["shard_transfer"] == pytest.approx(
            plan.transfer_s(4))

    def test_invalid_shard_counts_rejected(self, config):
        bw = get_platform("upmem").scatter
        with pytest.raises(ValueError):
            ShardPlan(config, shards=0, interconnect=bw)
        with pytest.raises(ValueError, match="cannot split"):
            ShardPlan(config, shards=5, interconnect=bw)

    def test_cluster_run_reports_transfer_phase(self, server, config,
                                                service_s):
        stream = _stream(service_s, n=12, rho=0.8, seed=6)
        res = ClusterScheduler(server, config, replicas=1, shards=2).run(
            stream)
        assert res.shard_plan is not None
        assert "prefill/shard_transfer" in res.phase_seconds
        assert "decode/shard_transfer" in res.phase_seconds
        report = res.phase_attribution()
        assert "shard_transfer" in report.phase_seconds


# ----------------------------------------------------------------------
# Acceptance: goodput scales monotonically with replication at overload
# ----------------------------------------------------------------------
class TestGoodputScaling:
    def test_goodput_monotone_1_to_4_replicas_at_overload(self, server,
                                                          config, service_s,
                                                          cost):
        policy = SchedulerPolicy(max_batch_size=4, max_queue_len=16,
                                 slo_ttft_s=3 * service_s,
                                 slo_e2e_s=3 * service_s)
        points = cluster_load_sweep(
            server, config, replica_counts=(1, 2, 4), shard_counts=(1,),
            routers=("round-robin",), utilizations=(1.5,),
            num_requests=120, prompt_len=64, generate_len=16,
            policy=policy, seed=7,
        )
        goodputs = [p.result.goodput_rps for p in points]
        assert len(goodputs) == 3
        assert goodputs == sorted(goodputs)
        assert goodputs[-1] > goodputs[0]

    def test_sweep_cells_share_identical_streams(self, server, config,
                                                 service_s, cost):
        points = cluster_load_sweep(
            server, config, replica_counts=(1, 2), utilizations=(0.8,),
            num_requests=16, prompt_len=64, generate_len=16,
        )
        total = [p.result.completed + p.result.rejected + p.result.shed
                 for p in points]
        assert total == [16, 16]

    def test_sweep_validates_utilizations_upfront(self, server, config):
        """A bad rho anywhere in the list fails before any simulation —
        the explicit non-positive check, never truthiness (0.0 is an
        error, not a default), matching the serve-sim convention."""
        for bad in ((0.0,), (0.8, 0.0), (-1.5,)):
            with pytest.raises(ValueError,
                               match="utilizations must be positive"):
                cluster_load_sweep(server, config, utilizations=bad,
                                   num_requests=5)


# ----------------------------------------------------------------------
# obs: chrome-trace replica lanes and CLI
# ----------------------------------------------------------------------
class TestObservability:
    def test_chrome_trace_has_replica_lanes(self, server, config, service_s,
                                            cost):
        stream = _stream(service_s, n=16, rho=1.0, seed=8)
        t_kill = stream[5].arrival_s
        res = ClusterScheduler(
            server, config, replicas=2, cost_model=cost,
            failures=[ReplicaFailure(0, t_kill)],
        ).run(stream)
        document = obs.build_chrome_trace(clusters=[res])
        events = document["traceEvents"]
        lanes = {e["args"]["name"] for e in events
                 if e.get("name") == "thread_name"}
        assert any(lane.startswith("replica 0 (failed") for lane in lanes)
        assert "replica 1" in lanes
        request_events = [e for e in events
                          if e.get("ph") == "X" and e.get("cat") == "cluster"]
        assert len(request_events) == res.completed
        assert any(e["name"] == "replica_failed" for e in events)

    def test_serve_cluster_cli_sweep_json_monotone(self, capsys):
        import json

        from repro.cli import main

        code = main([
            "serve-cluster", "--model", "bert-base", "--layers", "1",
            "--sweep", "--replicas", "1,2,4", "--utilization", "1.5",
            "--requests", "48", "--prompt-len", "64", "--generate-len", "16",
            "--max-batch", "4", "--queue-cap", "16", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        points = payload["points"]
        assert [p["replicas"] for p in points] == [1, 2, 4]
        goodputs = [p["result"]["goodput_rps"] for p in points]
        assert goodputs == sorted(goodputs)
        assert goodputs[-1] > goodputs[0]

    def test_serve_cluster_cli_failover_run(self, capsys):
        import json

        from repro.cli import main

        code = main([
            "serve-cluster", "--model", "bert-base", "--layers", "1",
            "--replicas", "2", "--requests", "24", "--prompt-len", "64",
            "--generate-len", "16", "--fail-ranks", "2", "--fail-at", "0.4",
            "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        cluster = payload["cluster"]
        assert cluster["replica_failed_at"][0] == 0.4
        assert cluster["completed"] + cluster["rejected"] + \
            cluster["shed"] == 24

    def test_serve_cluster_cli_rejects_bad_args(self, capsys):
        from repro.cli import main

        assert main(["serve-cluster", "--routers", "random"]) == 2
        assert main(["serve-cluster", "--replicas", "1,2"]) == 2
        assert main(["serve-cluster", "--sweep", "--rate", "5"]) == 2
        assert main(["serve-cluster", "--fail-ranks", "0"]) == 2
        capsys.readouterr()

    def test_cluster_counters_accumulate(self, server, config, service_s,
                                         cost):
        obs.reset()
        stream = _stream(service_s, n=10, rho=0.8, seed=5)
        ClusterScheduler(server, config, replicas=2,
                         cost_model=cost).run(stream)
        snapshot = obs.get_registry().snapshot()
        assert snapshot["cluster.requests_routed"]["value"] == 10
        assert snapshot["cluster.runs"]["value"] == 1
        obs.reset()
