"""Continuous-batching scheduler + serving-layer bugfix regression tests.

Covers the :mod:`repro.engine.scheduler` discrete-event simulator (admission
policy, chunked prefill, FIFO consistency, batching win, telemetry,
resilience accounting) and the serving bugfix sweep: zero-token throughput,
falsy-zero parameter defaults, and per-request degradation attribution.
"""

import numpy as np
import pytest

from repro import obs
from repro.baselines import wimpy_host
from repro.engine import (
    EngineReport,
    GenerationServer,
    Request,
    RequestScheduler,
    SchedulerPolicy,
    ServingReport,
    poisson_requests,
    scheduler_load_sweep,
    simulate_queue,
)
from repro.pim import get_platform
from repro.resilience import DegradationLedger, FaultInjector, FaultPlan, RecoveryManager
from repro.workloads import opt_style


@pytest.fixture(scope="module")
def config():
    return opt_style(256, seq_len=64, batch_size=1)


@pytest.fixture(scope="module")
def server(config):
    return GenerationServer(get_platform("upmem"), wimpy_host())


@pytest.fixture(scope="module")
def scheduler(server, config):
    return RequestScheduler(
        server, config, policy=SchedulerPolicy(max_batch_size=8)
    )


def _stream(scheduler, n=40, rho=0.8, prompt=64, gen=16, seed=3, **kwargs):
    service = scheduler.fifo_service_time(Request(-1, 0.0, prompt, gen))
    return poisson_requests(
        n, rho / service, prompt_len=prompt, generate_len=gen, seed=seed,
        **kwargs,
    ), service


# ---------------------------------------------------------------------------
# Satellite bugfix regressions
# ---------------------------------------------------------------------------
class TestServingBugfixes:
    def test_zero_generation_throughput_is_zero_not_inf(self):
        report = ServingReport(
            engine="e", model="m", prompt_len=64, generate_len=0,
            batch_size=4, prefill_s=0.5, decode_s=0.0,
        )
        assert report.generated_tokens_per_s == 0.0

    def test_empty_engine_report_throughput_is_zero_not_inf(self):
        report = EngineReport(engine="e", model="m", ops=[])
        assert report.throughput_inferences_per_s == 0.0

    def test_positive_throughput_unchanged(self):
        report = ServingReport(
            engine="e", model="m", prompt_len=64, generate_len=10,
            batch_size=2, prefill_s=0.5, decode_s=0.5,
        )
        assert report.generated_tokens_per_s == pytest.approx(40.0)

    def test_run_rejects_zero_prompt_len_instead_of_config_fallback(
        self, server, config
    ):
        with pytest.raises(ValueError, match="prompt_len"):
            server.run(config, prompt_len=0, generate_len=1)

    def test_run_rejects_zero_batch_size_instead_of_config_fallback(
        self, server, config
    ):
        with pytest.raises(ValueError, match="batch_size"):
            server.run(config, batch_size=0, generate_len=1)

    def test_warmup_rejects_non_positive_parameters(self, server, config):
        with pytest.raises(ValueError, match="prompt_len"):
            server.warmup(config, prompt_len=0)
        with pytest.raises(ValueError, match="batch_size"):
            server.warmup(config, batch_size=-2)

    def test_none_still_means_config_default(self, server, config):
        report = server.run(config, prompt_len=None, generate_len=1,
                            batch_size=None)
        assert report.prompt_len == config.seq_len
        assert report.batch_size == config.batch_size

    def test_explicit_values_are_honored(self, server, config):
        report = server.run(config, prompt_len=32, generate_len=1, batch_size=2)
        assert report.prompt_len == 32
        assert report.batch_size == 2


class TestLedgerRequestScope:
    def test_scope_slices_by_index(self):
        ledger = DegradationLedger()
        ledger.fallbacks += 1
        ledger.fallback_layers.append("before")
        scope = ledger.open_request_scope("r1")
        ledger.fallbacks += 2
        ledger.fallback_layers.extend(["a", "b"])
        sliced = ledger.close_request_scope(scope)
        assert sliced.fallbacks == 2
        assert sliced.fallback_layers == ("a", "b")

    def test_same_owner_concurrent_scope_rejected(self):
        ledger = DegradationLedger()
        ledger.open_request_scope("r1")
        with pytest.raises(RuntimeError, match="open request scope"):
            ledger.open_request_scope("r1")
        ledger.close_request_scope("r1")
        # After closing, the same owner opens cleanly again.
        ledger.close_request_scope(ledger.open_request_scope("r1"))

    def test_distinct_owners_may_overlap_and_slice_independently(self):
        """Per-replica scopes on one shared ledger (the cluster wiring)."""
        ledger = DegradationLedger()
        ledger.open_request_scope("replica0")
        ledger.fallbacks += 1
        ledger.fallback_layers.append("a")
        ledger.open_request_scope("replica1")
        ledger.fallbacks += 1
        ledger.fallback_layers.append("b")
        first = ledger.close_request_scope("replica0")
        second = ledger.close_request_scope("replica1")
        # replica0's window saw both events; replica1 only the second.
        assert first.fallbacks == 2
        assert first.fallback_layers == ("a", "b")
        assert second.fallbacks == 1
        assert second.fallback_layers == ("b",)

    def test_mismatched_close_rejected(self):
        ledger = DegradationLedger()
        ledger.open_request_scope("r1")
        with pytest.raises(RuntimeError, match="r2"):
            ledger.close_request_scope("r2")

    def test_server_request_inside_foreign_scope_now_succeeds(self, config):
        """Regression for the single-node scope assumption: a request on a
        shared ledger no longer trips over another owner's open scope."""
        manager = RecoveryManager(FaultInjector(FaultPlan(failed_ranks=(0,))))
        resilient = GenerationServer(
            get_platform("upmem"), wimpy_host(), resilience=manager
        )
        outer = manager.ledger.open_request_scope("other-request")
        report = resilient.run(config, prompt_len=16, generate_len=1)
        assert report.degraded is not None
        outer_slice = manager.ledger.close_request_scope(outer)
        # The enclosing scope's slice contains the request's degradation.
        assert outer_slice.remaps >= report.degraded.remaps
        # No scope leaked: a sequential request still works.
        report = resilient.run(config, prompt_len=16, generate_len=1)
        assert report.degraded is not None


# ---------------------------------------------------------------------------
# Queueing properties
# ---------------------------------------------------------------------------
class TestUniformSeedInvariance:
    @pytest.mark.parametrize("seed", [1, 7, 1234])
    @pytest.mark.parametrize("rate", [0.3, 0.8])
    def test_uniform_latencies_invariant_to_seed(self, seed, rate):
        base = simulate_queue(1.0, rate, num_requests=300, arrivals="uniform",
                              seed=0)
        other = simulate_queue(1.0, rate, num_requests=300,
                               arrivals="uniform", seed=seed)
        assert other.p50_latency_s == base.p50_latency_s
        assert other.p95_latency_s == base.p95_latency_s
        assert other.p99_latency_s == base.p99_latency_s
        assert other.mean_latency_s == base.mean_latency_s

    def test_poisson_latencies_do_depend_on_seed(self):
        a = simulate_queue(1.0, 0.8, num_requests=300, seed=0)
        b = simulate_queue(1.0, 0.8, num_requests=300, seed=1)
        assert a.mean_latency_s != b.mean_latency_s


# ---------------------------------------------------------------------------
# Scheduler core
# ---------------------------------------------------------------------------
class TestRequestValidation:
    def test_request_rejects_bad_fields(self):
        with pytest.raises(ValueError):
            Request(0, -1.0, 8, 4)
        with pytest.raises(ValueError):
            Request(0, 0.0, 0, 4)
        with pytest.raises(ValueError):
            Request(0, 0.0, 8, -1)
        with pytest.raises(ValueError):
            Request(0, 0.0, 8, 4, batch=0)

    def test_policy_rejects_bad_fields(self):
        with pytest.raises(ValueError):
            SchedulerPolicy(max_batch_size=0)
        with pytest.raises(ValueError):
            SchedulerPolicy(max_queue_len=0)
        with pytest.raises(ValueError):
            SchedulerPolicy(prefill_chunk=0)


class TestFIFOConsistency:
    def test_batch1_matches_simulate_queue_sojourns(self, server, config):
        """Batch 1, no interleaving => the FIFO single-server queue."""
        fifo = RequestScheduler(server, config,
                                policy=SchedulerPolicy().fifo())
        stream, service = _stream(fifo, n=50, rho=0.8, seed=5)
        result = fifo.run(stream)
        assert result.completed == 50 and result.rejected == 0

        queue = simulate_queue(service, 0.8 / service, num_requests=50,
                               seed=5)
        sojourns = np.asarray(result.sojourn_times())
        assert float(np.percentile(sojourns, 50)) == pytest.approx(
            queue.p50_latency_s, rel=1e-9
        )
        assert float(np.percentile(sojourns, 95)) == pytest.approx(
            queue.p95_latency_s, rel=1e-9
        )
        assert float(np.percentile(sojourns, 99)) == pytest.approx(
            queue.p99_latency_s, rel=1e-9
        )
        assert float(sojourns.mean()) == pytest.approx(
            queue.mean_latency_s, rel=1e-9
        )

    def test_fifo_service_time_composes_prefill_and_decode(self, scheduler):
        r = Request(0, 0.0, 64, 4)
        expected = scheduler.cost.prefill_s(64, 1) + sum(
            scheduler.cost.decode_step_s(1, 64 + k) for k in range(4)
        )
        assert scheduler.fifo_service_time(r) == pytest.approx(expected)


class TestContinuousBatching:
    def test_all_requests_complete_in_arrival_order_stats(self, scheduler):
        stream, _ = _stream(scheduler, n=30, rho=0.8)
        result = scheduler.run(stream)
        assert result.completed == 30
        assert result.rejected == 0
        assert [r.request_id for r in result.requests] == [
            r.request_id for r in sorted(stream, key=lambda q: q.arrival_s)
        ]
        for r in result.requests:
            assert r.finished_s >= r.prefill_done_s >= r.admitted_s >= r.arrival_s
            assert r.ttft_s > 0 and r.e2e_s >= r.ttft_s

    def test_occupancy_respects_max_batch(self, server, config):
        sched = RequestScheduler(
            server, config, policy=SchedulerPolicy(max_batch_size=3)
        )
        stream, _ = _stream(sched, n=30, rho=1.5)
        result = sched.run(stream)
        assert result.peak_batch_occupancy <= 3
        assert result.completed == 30

    def test_batching_beats_fifo_under_overload(self, server, config):
        """The acceptance curve: more goodput at equal-or-better P95."""
        slo_policy = SchedulerPolicy(max_batch_size=8)
        batched = RequestScheduler(server, config, policy=slo_policy)
        fifo = RequestScheduler(server, config, policy=slo_policy.fifo())
        fifo.cost = batched.cost
        stream, _ = _stream(batched, n=40, rho=1.4, seed=11)
        b = batched.run(stream)
        f = fifo.run(stream)
        assert b.completed == f.completed == 40
        assert b.e2e_p95_s < f.e2e_p95_s
        assert b.throughput_rps > f.throughput_rps
        assert b.mean_batch_occupancy > f.mean_batch_occupancy

    def test_bounded_queue_rejects_overflow(self, server, config):
        sched = RequestScheduler(
            server, config,
            policy=SchedulerPolicy(max_batch_size=1, max_queue_len=2),
        )
        stream, _ = _stream(sched, n=25, rho=3.0, seed=2)
        result = sched.run(stream)
        assert result.rejected > 0
        assert result.completed + result.rejected == 25
        assert all(
            r.finished_s == 0.0 for r in result.requests if r.rejected
        )

    def test_infeasible_request_rejected_immediately(self, server, config):
        sched = RequestScheduler(
            server, config, policy=SchedulerPolicy(max_batch_size=2)
        )
        too_wide = Request(0, 0.0, 16, 2, batch=4)
        ok = Request(1, 0.0, 16, 2)
        result = sched.run([too_wide, ok])
        assert result.rejected == 1
        assert result.completed == 1
        assert result.requests[0].rejected

    def test_prefill_only_request_completes_at_prefill(self, scheduler):
        r = Request(0, 0.0, 64, 0)
        result = scheduler.run([r])
        stats = result.requests[0]
        assert result.completed == 1
        assert stats.ttft_s == pytest.approx(
            scheduler.cost.prefill_s(64, 1)
        )
        assert stats.tpot_s == 0.0
        assert result.generated_tokens == 0
        assert result.generated_tokens_per_s == 0.0

    def test_chunked_prefill_interleaves_decode(self, server, config):
        chunked = RequestScheduler(
            server, config,
            policy=SchedulerPolicy(max_batch_size=4, chunked_prefill=True,
                                   prefill_chunk=16),
        )
        whole = RequestScheduler(
            server, config, policy=SchedulerPolicy(max_batch_size=4)
        )
        chunked.cost = whole.cost
        # One long-prompt request arrives while a short one is decoding.
        stream = [
            Request(0, 0.0, 16, 24),
            Request(1, 0.001, 64, 4),
        ]
        c = chunked.run(stream)
        w = whole.run(stream)
        assert c.completed == w.completed == 2
        assert c.prefill_tokens == w.prefill_tokens == 80

        def max_step_s(result):
            times = [t for t, _ in result.occupancy_timeline]
            return max(np.diff([0.0] + times))

        # Chunking bounds the decode stall one long prompt can cause: no
        # single step carries the whole 64-token prefill.
        assert max_step_s(c) < max_step_s(w)

    def test_batch_hint_occupies_slots_and_scales_tokens(self, server, config):
        sched = RequestScheduler(
            server, config, policy=SchedulerPolicy(max_batch_size=4)
        )
        result = sched.run([
            Request(0, 0.0, 16, 4, batch=3),
            Request(1, 0.0, 16, 4, batch=2),  # does not fit alongside (3+2>4)
        ])
        assert result.completed == 2
        assert result.peak_batch_occupancy == 3
        # 3 seqs x 4 tokens + 2 seqs x 4 tokens
        assert result.generated_tokens == 20

    def test_rerun_is_deterministic(self, scheduler):
        stream, _ = _stream(scheduler, n=15, rho=0.7, seed=9)
        a = scheduler.run(stream)
        b = scheduler.run(stream)
        assert a.makespan_s == b.makespan_s
        assert a.sojourn_times() == b.sojourn_times()


class TestSLOAndSweep:
    def test_goodput_counts_only_slo_compliant(self, server, config):
        sched = RequestScheduler(
            server, config, policy=SchedulerPolicy(max_batch_size=8)
        )
        stream, service = _stream(sched, n=30, rho=1.2, seed=4)
        loose = sched.run(stream)
        assert loose.goodput_rps == pytest.approx(loose.throughput_rps)

        tight = RequestScheduler(
            server, config,
            policy=SchedulerPolicy(max_batch_size=8,
                                   slo_e2e_s=service * 1.01),
        )
        tight.cost = sched.cost
        constrained = tight.run(stream)
        assert constrained.slo_attained < constrained.completed
        assert constrained.goodput_rps < constrained.throughput_rps

    def test_load_sweep_latency_monotone_and_batching_wins(self, scheduler):
        points = scheduler_load_sweep(
            scheduler, utilizations=(0.5, 0.9, 1.3), num_requests=25,
            prompt_len=64, generate_len=8, seed=6,
        )
        assert [p.target_utilization for p in points] == [0.5, 0.9, 1.3]
        batched_p95 = [p.batched.e2e_p95_s for p in points]
        assert batched_p95 == sorted(batched_p95)
        # At the overloaded point the FIFO baseline has strictly worse P95.
        assert points[-1].batched.e2e_p95_s < points[-1].fifo.e2e_p95_s

    def test_load_sweep_validates_utilizations_upfront(self, scheduler):
        """A bad rho anywhere in the list fails before any simulation —
        the explicit non-positive check, never truthiness (0.0 is an
        error, not a default), matching the serve-sim convention."""
        for bad in ((0.0,), (0.5, 0.0, 0.9), (-0.2,)):
            with pytest.raises(ValueError,
                               match="utilizations must be positive"):
                scheduler_load_sweep(scheduler, utilizations=bad,
                                     num_requests=5)


class TestSchedulerTelemetry:
    def test_counters_histograms_and_spans_recorded(self, server, config):
        registry = obs.get_registry()
        tracer = obs.get_tracer()
        sched = RequestScheduler(
            server, config, policy=SchedulerPolicy(max_batch_size=4)
        )
        stream, _ = _stream(sched, n=10, rho=0.9, seed=8)
        before_steps = registry.counter("scheduler.steps").value
        before_done = registry.counter("scheduler.requests_completed").value
        result = sched.run(stream)
        assert registry.counter("scheduler.steps").value - before_steps == (
            result.steps
        )
        assert registry.counter(
            "scheduler.requests_completed"
        ).value - before_done == 10
        assert registry.histogram("scheduler.ttft_s").count >= 10
        assert registry.histogram("scheduler.tpot_s").count >= 10
        names = [s.name for s in tracer.finished_spans()]
        assert "scheduler.run" in names
        assert "scheduler.step" in names

    def test_spans_land_in_chrome_trace_export(self, server, config, tmp_path):
        sched = RequestScheduler(server, config)
        stream, _ = _stream(sched, n=5, rho=0.5, seed=13)
        sched.run(stream)
        out = tmp_path / "trace.json"
        document = obs.write_chrome_trace(
            str(out),
            spans=obs.get_tracer().finished_spans(),
            metrics=obs.get_registry().snapshot(),
        )
        names = {e.get("name") for e in document["traceEvents"]}
        assert "scheduler.run" in names
        assert "scheduler.step" in names


class TestSchedulerResilience:
    def test_degradation_accounted_at_batch_level(self, config):
        manager = RecoveryManager(FaultInjector(FaultPlan(failed_ranks=(0,))))
        resilient = GenerationServer(
            get_platform("upmem"), wimpy_host(), resilience=manager
        )
        sched = RequestScheduler(
            resilient, config, policy=SchedulerPolicy(max_batch_size=4)
        )
        stream, _ = _stream(sched, n=6, rho=0.8, seed=10)
        result = sched.run(stream)
        assert result.completed == 6
        assert result.degradation is not None
        assert result.degradation.degraded
        assert result.degradation.remaps > 0
        # The run closed its ledger scope: a sequential server request can
        # open one again without tripping the interleaving guard.
        report = resilient.run(config, prompt_len=16, generate_len=1)
        assert report.degraded is not None
