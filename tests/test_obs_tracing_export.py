"""Tests for span tracing, the exporters, and the Chrome-trace bridges."""

import json
import threading

import pytest

from repro.obs import (
    Tracer,
    build_chrome_trace,
    report_to_chrome_events,
    spans_to_chrome_events,
    spans_to_jsonl_lines,
    to_jsonable,
    write_chrome_trace,
    write_spans_jsonl,
)
from repro.core import LUTShape
from repro.engine.report import EngineReport, OpLatency
from repro.mapping import AutoTuner
from repro.pim import PIMSimulator, get_platform, trace_kernel


@pytest.fixture()
def tracer():
    return Tracer()


def make_spans(tracer):
    with tracer.span("outer", stage="demo"):
        with tracer.span("inner-1"):
            pass
        with tracer.span("inner-2") as sp:
            sp.set_attribute("k", 3)
    return tracer.finished_spans()


class TestTracer:
    def test_nested_span_parenting(self, tracer):
        spans = make_spans(tracer)
        by_name = {s.name: s for s in spans}
        outer = by_name["outer"]
        assert outer.parent_id is None
        assert by_name["inner-1"].parent_id == outer.span_id
        assert by_name["inner-2"].parent_id == outer.span_id
        assert by_name["inner-2"].attributes["k"] == 3

    def test_children_finish_before_parent(self, tracer):
        spans = make_spans(tracer)
        # Finished order: children first, then the parent.
        assert [s.name for s in spans] == ["inner-1", "inner-2", "outer"]
        outer = spans[-1]
        for child in spans[:-1]:
            assert child.start_s >= outer.start_s
            assert child.end_s <= outer.end_s

    def test_duration_requires_closed_span(self, tracer):
        with tracer.span("open") as sp:
            with pytest.raises(ValueError):
                _ = sp.duration_s
        assert sp.duration_s >= 0.0

    def test_threads_do_not_share_span_stacks(self, tracer):
        seen = {}

        def work(tag):
            with tracer.span(f"thread-{tag}") as sp:
                seen[tag] = sp.parent_id

        with tracer.span("main-root"):
            threads = [
                threading.Thread(target=work, args=(i,)) for i in range(2)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        # Spans opened on other threads must not parent onto main's stack.
        assert seen == {0: None, 1: None}

    def test_finished_buffer_is_bounded(self):
        tracer = Tracer(max_spans=4)
        for i in range(10):
            with tracer.span(f"s{i}"):
                pass
        names = [s.name for s in tracer.finished_spans()]
        assert names == ["s6", "s7", "s8", "s9"]

    def test_exception_still_closes_span(self, tracer):
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        (span,) = tracer.finished_spans()
        assert span.end_s is not None
        assert tracer.current_span() is None


class TestJsonlExport:
    def test_lines_are_valid_json(self, tracer):
        lines = spans_to_jsonl_lines(make_spans(tracer))
        assert len(lines) == 3
        parsed = [json.loads(line) for line in lines]
        assert {p["name"] for p in parsed} == {"outer", "inner-1", "inner-2"}
        for p in parsed:
            assert p["duration_s"] >= 0.0

    def test_write_jsonl_file(self, tracer, tmp_path):
        path = str(tmp_path / "spans.jsonl")
        count = write_spans_jsonl(path, make_spans(tracer))
        with open(path) as fh:
            lines = fh.read().splitlines()
        assert count == len(lines) == 3


class TestChromeSpansExport:
    def test_complete_events_have_ts_and_dur(self, tracer):
        events = spans_to_chrome_events(make_spans(tracer))
        timed = [e for e in events if e["ph"] == "X"]
        assert len(timed) == 3
        for e in timed:
            assert e["dur"] >= 0.0 and e["ts"] >= 0.0
            assert "span_id" in e["args"]

    def test_begin_end_pairs_are_balanced_and_ordered(self, tracer):
        events = spans_to_chrome_events(make_spans(tracer), complete=False)
        begins = [e for e in events if e["ph"] == "B"]
        ends = [e for e in events if e["ph"] == "E"]
        assert len(begins) == len(ends) == 3
        starts = {e["name"]: e["ts"] for e in begins}
        stops = {e["name"]: e["ts"] for e in ends}
        for name in starts:
            assert starts[name] <= stops[name]


class TestBridges:
    def test_report_events_are_sequential(self):
        report = EngineReport(engine="e", model="m")
        report.ops = [
            OpLatency("a", "host", "gemm", 1.0),
            OpLatency("b", "pim", "lut", 2.0),
            OpLatency("c", "host", "elementwise", 0.5),
        ]
        events = report_to_chrome_events(report, pid=7)
        timed = [e for e in events if e["ph"] == "X"]
        assert [e["ts"] for e in timed] == [0.0, 1e6, 3e6]
        assert [e["dur"] for e in timed] == [1e6, 2e6, 0.5e6]
        assert all(e["pid"] == 7 for e in timed)
        # host and pim land on different rows
        assert timed[0]["tid"] != timed[1]["tid"]

    def test_kernel_trace_bridge_matches_event_stream(self):
        platform = get_platform("upmem")
        shape = LUTShape(n=512, h=64, f=128, v=4, ct=8)
        mapping = AutoTuner(platform).tune(shape).mapping
        trace = trace_kernel(shape, mapping, platform)
        events = trace.to_chrome_events(pid=3)
        timed = [e for e in events if e["ph"] == "X"]
        assert len(timed) == len(trace.events)
        assert timed == sorted(timed, key=lambda e: e["ts"])
        assert {e["cat"] for e in timed} == {"pim-kernel"}
        # total modeled time round-trips (ts+dur of the last event).
        last = max(timed, key=lambda e: e["ts"] + e["dur"])
        assert (last["ts"] + last["dur"]) / 1e6 == pytest.approx(trace.total_s)


class TestChromeTraceDocument:
    def test_round_trip_valid_json_and_monotonic_ts(self, tracer, tmp_path):
        platform = get_platform("upmem")
        shape = LUTShape(n=512, h=64, f=128, v=4, ct=8)
        mapping = AutoTuner(platform).tune(shape).mapping
        trace = trace_kernel(shape, mapping, platform)
        report = EngineReport(engine="e", model="m")
        report.ops = [OpLatency("a", "host", "gemm", 1.0)]

        path = str(tmp_path / "trace.json")
        write_chrome_trace(
            path,
            spans=make_spans(tracer),
            reports=[report],
            kernel_traces=[trace],
            metrics={"k": 1},
        )
        with open(path) as fh:
            document = json.load(fh)

        assert document["displayTimeUnit"] == "ms"
        assert document["otherData"]["metrics"] == {"k": 1}
        events = document["traceEvents"]
        timed = [e for e in events if e["ph"] != "M"]
        assert timed  # spans + report ops + kernel events all present
        ts = [e["ts"] for e in timed]
        assert ts == sorted(ts)
        pids = {e["pid"] for e in timed}
        assert len(pids) == 3  # wall spans, engine report, kernel trace
        # metadata names every process
        names = {
            e["pid"]: e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert set(names) == pids

    def test_empty_document_is_valid(self):
        document = build_chrome_trace()
        assert document["traceEvents"] == []
        json.dumps(document)

    def test_mixed_sources_with_per_rank_lanes(self, tracer, tmp_path):
        """Satellite: wall spans + engine timeline + kernel trace + per-rank
        profile lanes coexist in one Perfetto-valid document."""
        platform = get_platform("upmem")
        shape = LUTShape(n=512, h=64, f=128, v=4, ct=8)
        mapping = AutoTuner(platform).tune(shape).mapping
        trace = trace_kernel(shape, mapping, platform)
        sim_report = PIMSimulator(platform).run(shape, mapping)
        engine_report = EngineReport(engine="e", model="m")
        engine_report.ops = [OpLatency("a", "host", "gemm", 1.0)]

        path = str(tmp_path / "mixed.json")
        document = write_chrome_trace(
            path,
            spans=make_spans(tracer),
            reports=[engine_report],
            kernel_traces=[trace],
            profiles=[sim_report.profile],
        )
        with open(path) as fh:
            assert json.load(fh) == document

        events = document["traceEvents"]
        metadata = [e for e in events if e["ph"] == "M"]
        timed = [e for e in events if e["ph"] != "M"]

        # Perfetto-valid: metadata first, then ts-sorted timed events with
        # the required keys and non-negative durations.
        assert events[: len(metadata)] == metadata
        assert [e["ts"] for e in timed] == sorted(e["ts"] for e in timed)
        for e in timed:
            assert {"name", "ph", "ts", "pid", "tid"} <= set(e)
            if e["ph"] == "X":
                assert e["dur"] >= 0

        # Each source owns a distinct pid; within a pid, (tid, lane) rows
        # never collide across sources.
        assert len({e["pid"] for e in timed}) == 4
        rank_lanes = [e for e in timed if e.get("cat") == "pim-rank"]
        assert rank_lanes
        (rank_pid,) = {e["pid"] for e in rank_lanes}
        assert all(
            e["pid"] == rank_pid for e in timed if e.get("cat") == "pim-rank"
        )
        assert all(
            e["pid"] != rank_pid for e in timed if e.get("cat") != "pim-rank"
        )

        # Per-rank lanes: one thread per used rank, named in metadata.
        used_ranks = set(sim_report.profile.rank_segments)
        lane_tids = {e["tid"] for e in rank_lanes}
        assert lane_tids == {rank + 1 for rank in used_ranks}
        thread_names = {
            (e["pid"], e["tid"]): e["args"]["name"]
            for e in metadata
            if e["name"] == "thread_name"
        }
        for tid in lane_tids:
            assert "rank" in thread_names[(rank_pid, tid)]
        # The rank timeline spans the kernel's modeled duration.
        end = max(e["ts"] + e["dur"] for e in rank_lanes)
        assert end / 1e6 == pytest.approx(
            sim_report.total_s - sim_report.launch_s
        )


class TestToJsonable:
    def test_handles_numpy_and_dataclasses(self):
        import numpy as np
        from dataclasses import dataclass

        @dataclass
        class Point:
            x: int
            tag: tuple

        payload = to_jsonable(
            {
                "arr": np.arange(3),
                "scalar": np.float64(1.5),
                "point": Point(1, ("a", "b")),
                "set": {1},
                3: "int-key",
            }
        )
        assert payload["arr"] == [0, 1, 2]
        assert payload["scalar"] == 1.5
        assert payload["point"] == {"x": 1, "tag": ["a", "b"]}
        assert payload["set"] == [1]
        assert payload["3"] == "int-key"
        json.dumps(payload)
