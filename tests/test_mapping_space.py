"""Unit tests for the mapping parameter space (P1-P4) and legality rules."""

import pytest

from repro.core import LUTShape
from repro.mapping import (
    LOAD_SCHEMES,
    TRAVERSALS,
    Mapping,
    buffer_bytes_required,
    enumerate_micro_kernels,
    enumerate_sub_lut_tilings,
    is_legal,
    num_pes_used,
)
from repro.pim import get_platform


@pytest.fixture
def platform():
    return get_platform("upmem")


@pytest.fixture
def shape():
    return LUTShape(n=1024, h=64, f=256, v=4, ct=16)


class TestMapping:
    def test_defaults(self):
        m = Mapping(64, 32, 8, 8, 4)
        assert m.load_scheme == "static"
        assert m.traversal == ("n", "f", "cb")

    def test_rejects_bad_traversal(self):
        with pytest.raises(ValueError):
            Mapping(64, 32, 8, 8, 4, traversal=("n", "n", "cb"))

    def test_rejects_bad_scheme(self):
        with pytest.raises(ValueError):
            Mapping(64, 32, 8, 8, 4, load_scheme="medium")

    def test_rejects_nonpositive_tiles(self):
        with pytest.raises(ValueError):
            Mapping(0, 32, 8, 8, 4)
        with pytest.raises(ValueError):
            Mapping(64, 32, 8, 8, 4, f_load_tile=0)

    def test_with_replaces_fields(self):
        m = Mapping(64, 32, 8, 8, 4)
        m2 = m.with_(load_scheme="fine", f_load_tile=8)
        assert m2.load_scheme == "fine"
        assert m.load_scheme == "static"  # immutable original


class TestPECount:
    def test_eq5(self, shape):
        m = Mapping(n_s_tile=128, f_s_tile=32, n_m_tile=8, f_m_tile=8, cb_m_tile=4)
        assert num_pes_used(shape, m) == (1024 // 128) * (256 // 32)


class TestBufferBytes:
    def test_static_includes_whole_sub_lut(self, shape):
        m = Mapping(128, 32, 8, 8, 4, load_scheme="static")
        expected = 8 * 4 * 1 + 8 * 8 * 4 + shape.cb * shape.ct * 32 * 1
        assert buffer_bytes_required(shape, m) == expected

    def test_coarse_counts_load_block(self, shape):
        m = Mapping(128, 32, 8, 8, 4, load_scheme="coarse",
                    cb_load_tile=2, f_load_tile=4)
        expected = 8 * 4 + 8 * 8 * 4 + 2 * shape.ct * 4
        assert buffer_bytes_required(shape, m) == expected

    def test_fine_counts_slots(self, shape):
        from repro.mapping import FINE_GRAIN_SLOTS

        m = Mapping(128, 32, 8, 8, 4, load_scheme="fine", f_load_tile=8)
        expected = 8 * 4 + 8 * 8 * 4 + FINE_GRAIN_SLOTS * 8
        assert buffer_bytes_required(shape, m) == expected


class TestLegality:
    def test_legal_example(self, shape, platform):
        m = Mapping(128, 32, 8, 8, 4, load_scheme="coarse",
                    cb_load_tile=2, f_load_tile=4)
        assert is_legal(shape, m, platform)

    def test_indivisible_tiles_illegal(self, shape, platform):
        assert not is_legal(shape, Mapping(100, 32, 4, 8, 4), platform)
        assert not is_legal(shape, Mapping(128, 33, 4, 8, 4), platform)
        assert not is_legal(shape, Mapping(128, 32, 3, 8, 4), platform)
        assert not is_legal(shape, Mapping(128, 32, 4, 8, 3), platform)

    def test_too_many_pes_illegal(self, platform):
        big = LUTShape(n=65536, h=64, f=4096, v=4, ct=16)
        m = Mapping(n_s_tile=64, f_s_tile=4, n_m_tile=8, f_m_tile=4, cb_m_tile=4)
        assert num_pes_used(big, m) > platform.num_pes
        assert not is_legal(big, m, platform)

    def test_buffer_overflow_illegal(self, platform):
        # Static scheme whose sub-LUT exceeds 64 KB WRAM.
        big = LUTShape(n=1024, h=1024, f=4096, v=4, ct=16)
        m = Mapping(n_s_tile=256, f_s_tile=1024, n_m_tile=8, f_m_tile=8,
                    cb_m_tile=4, load_scheme="static")
        assert not is_legal(big, m, platform)

    def test_load_tile_bounds(self, shape, platform):
        m = Mapping(128, 32, 8, 8, 4, load_scheme="fine", f_load_tile=64)
        assert not is_legal(shape, m, platform)  # f_load > f_s_tile


class TestEnumeration:
    def test_sub_lut_tilings_respect_pe_budget(self, shape, platform):
        for n_s, f_s in enumerate_sub_lut_tilings(shape, platform):
            assert shape.n % n_s == 0 and shape.f % f_s == 0
            assert (shape.n // n_s) * (shape.f // f_s) <= platform.num_pes

    def test_micro_kernels_all_legal(self, shape, platform):
        count = 0
        for m in enumerate_micro_kernels(shape, 128, 32, platform, max_points=500):
            assert is_legal(shape, m, platform)
            count += 1
        assert count == 500

    def test_micro_kernels_cover_all_schemes_and_traversals(self, shape, platform):
        schemes, traversals = set(), set()
        for m in enumerate_micro_kernels(shape, 128, 32, platform):
            schemes.add(m.load_scheme)
            traversals.add(m.traversal)
        assert schemes == set(LOAD_SCHEMES)
        assert traversals == set(TRAVERSALS)

    def test_max_points_zero_edge(self, shape, platform):
        assert list(enumerate_micro_kernels(shape, 128, 32, platform, max_points=1))
