"""Unit tests for basic layers: Linear, LayerNorm, Embedding, activations."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import (Dropout, Embedding, GELU, LayerNorm, Linear, ReLU, Tanh,
                      default_rng, reset_default_rng)


class TestLinear:
    def test_output_matches_matmul(self):
        rng = np.random.default_rng(0)
        lin = Linear(4, 3, rng=rng)
        x = rng.normal(size=(5, 4))
        expected = x @ lin.weight.data + lin.bias.data
        np.testing.assert_allclose(lin(Tensor(x)).data, expected)

    def test_no_bias(self):
        rng = np.random.default_rng(1)
        lin = Linear(4, 3, bias=False, rng=rng)
        assert lin.bias is None
        x = rng.normal(size=(2, 4))
        np.testing.assert_allclose(lin(Tensor(x)).data, x @ lin.weight.data)

    def test_3d_input(self):
        rng = np.random.default_rng(2)
        lin = Linear(4, 3, rng=rng)
        out = lin(Tensor(rng.normal(size=(2, 5, 4))))
        assert out.shape == (2, 5, 3)

    def test_gradients_flow(self):
        rng = np.random.default_rng(3)
        lin = Linear(4, 3, rng=rng)
        x = Tensor(rng.normal(size=(5, 4)), requires_grad=True)
        lin(x).sum().backward()
        assert lin.weight.grad is not None
        assert lin.bias.grad is not None
        assert x.grad is not None

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            Linear(0, 3)
        with pytest.raises(ValueError):
            Linear(3, -1)

    def test_repr(self):
        assert "Linear" in repr(Linear(2, 3))


class TestLayerNorm:
    def test_normalizes_last_dim(self):
        rng = np.random.default_rng(4)
        ln = LayerNorm(16)
        out = ln(Tensor(rng.normal(3.0, 5.0, size=(10, 16)))).data
        np.testing.assert_allclose(out.mean(axis=-1), np.zeros(10), atol=1e-9)
        np.testing.assert_allclose(out.std(axis=-1), np.ones(10), atol=1e-3)

    def test_gamma_beta_applied(self):
        ln = LayerNorm(4)
        ln.gamma.data[:] = 2.0
        ln.beta.data[:] = 1.0
        out = ln(Tensor(np.random.default_rng(5).normal(size=(6, 4)))).data
        np.testing.assert_allclose(out.mean(axis=-1), np.ones(6), atol=1e-9)

    def test_constant_input_stable(self):
        ln = LayerNorm(4)
        out = ln(Tensor(np.full((2, 4), 7.0))).data
        assert np.all(np.isfinite(out))
        np.testing.assert_allclose(out, np.zeros((2, 4)), atol=1e-6)

    def test_gradients_flow(self):
        ln = LayerNorm(4)
        x = Tensor(np.random.default_rng(6).normal(size=(3, 4)), requires_grad=True)
        ln(x).sum().backward()
        assert ln.gamma.grad is not None and ln.beta.grad is not None


class TestEmbedding:
    def test_lookup_shape(self):
        emb = Embedding(10, 8, rng=np.random.default_rng(7))
        out = emb(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 8)

    def test_lookup_values(self):
        emb = Embedding(10, 4, rng=np.random.default_rng(8))
        out = emb(np.array([3]))
        np.testing.assert_allclose(out.data[0], emb.weight.data[3])

    def test_out_of_range_raises(self):
        emb = Embedding(10, 4)
        with pytest.raises(IndexError):
            emb(np.array([10]))
        with pytest.raises(IndexError):
            emb(np.array([-1]))

    def test_gradient_scatters_to_rows(self):
        emb = Embedding(10, 4, rng=np.random.default_rng(9))
        emb(np.array([2, 2, 5])).sum().backward()
        grad = emb.weight.grad
        np.testing.assert_allclose(grad[2], 2 * np.ones(4))
        np.testing.assert_allclose(grad[5], np.ones(4))
        np.testing.assert_allclose(grad[0], np.zeros(4))


class TestActivationsAndDropout:
    def test_gelu_relu_tanh_shapes(self):
        x = Tensor(np.random.default_rng(10).normal(size=(3, 4)))
        for act in (GELU(), ReLU(), Tanh()):
            assert act(x).shape == (3, 4)

    def test_dropout_eval_identity(self):
        d = Dropout(0.5, rng=np.random.default_rng(0))
        d.eval()
        x = Tensor(np.ones((4, 4)))
        assert d(x) is x

    def test_dropout_train_masks(self):
        d = Dropout(0.5, rng=np.random.default_rng(0))
        out = d(Tensor(np.ones((100, 100))))
        zeros = (out.data == 0).mean()
        assert 0.4 < zeros < 0.6

    def test_dropout_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.0)
        with pytest.raises(ValueError):
            Dropout(-0.1)


class TestSeededDefaultRng:
    """Unspecified ``rng`` falls back to a module-level *seeded* generator.

    Regression for layers silently using ``np.random.default_rng()``
    (fresh OS entropy) when no generator was passed: two identically
    configured models differed run-to-run.  ``reset_default_rng`` rewinds
    the shared stream so construction is reproducible on demand.
    """

    def test_linear_reproducible_after_reset(self):
        reset_default_rng(0)
        a = Linear(8, 4)
        reset_default_rng(0)
        b = Linear(8, 4)
        np.testing.assert_array_equal(a.weight.data, b.weight.data)
        np.testing.assert_array_equal(a.bias.data, b.bias.data)

    def test_stream_is_shared_not_per_call(self):
        # Two layers built back-to-back consume one stream: same shapes
        # must NOT collapse to identical weights.
        reset_default_rng(0)
        a = Linear(8, 4)
        b = Linear(8, 4)
        assert not np.array_equal(a.weight.data, b.weight.data)

    def test_embedding_reproducible_after_reset(self):
        reset_default_rng(3)
        a = Embedding(12, 6)
        reset_default_rng(3)
        b = Embedding(12, 6)
        np.testing.assert_array_equal(a.weight.data, b.weight.data)

    def test_dropout_mask_reproducible_after_reset(self):
        x = Tensor(np.ones((32, 32)))
        reset_default_rng(1)
        first = Dropout(0.5)(x).data.copy()
        reset_default_rng(1)
        second = Dropout(0.5)(x).data
        np.testing.assert_array_equal(first, second)

    def test_reset_returns_fresh_generator(self):
        gen = reset_default_rng(5)
        assert gen is default_rng()

    @pytest.mark.parametrize("bad", [None, -1])
    def test_reset_rejects_bad_seed(self, bad):
        with pytest.raises(ValueError):
            reset_default_rng(bad)
        reset_default_rng()  # restore the default stream for other tests

    def test_embedding_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            Embedding(0, 4)
        with pytest.raises(ValueError):
            Embedding(4, 0)
