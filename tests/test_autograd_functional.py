"""Unit tests for differentiable functional ops (softmax, losses, STE)."""

import numpy as np
import pytest

from repro.autograd import (
    Tensor,
    accuracy,
    cross_entropy,
    dropout,
    gelu,
    l2_reconstruction,
    log_softmax,
    mse,
    relu,
    sigmoid,
    softmax,
    ste_hard_assign,
)

from .test_autograd_tensor import check_grad


class TestSoftmax:
    def test_rows_sum_to_one(self):
        x = Tensor(np.random.default_rng(0).normal(size=(4, 5)))
        out = softmax(x).data
        np.testing.assert_allclose(out.sum(axis=-1), np.ones(4))
        assert np.all(out > 0)

    def test_shift_invariance(self):
        x = np.random.default_rng(1).normal(size=(3, 4))
        a = softmax(Tensor(x)).data
        b = softmax(Tensor(x + 100.0)).data
        np.testing.assert_allclose(a, b, atol=1e-12)

    def test_numerical_stability_large_values(self):
        out = softmax(Tensor([[1000.0, 1000.0]])).data
        np.testing.assert_allclose(out, [[0.5, 0.5]])

    def test_grad(self):
        rng = np.random.default_rng(2)
        check_grad(lambda t: (softmax(t) ** 2).sum(), rng.normal(size=(2, 4)))

    def test_log_softmax_matches_log_of_softmax(self):
        x = Tensor(np.random.default_rng(3).normal(size=(3, 5)))
        np.testing.assert_allclose(
            log_softmax(x).data, np.log(softmax(x).data), atol=1e-12
        )

    def test_log_softmax_grad(self):
        rng = np.random.default_rng(4)
        check_grad(lambda t: log_softmax(t).sum(), rng.normal(size=(2, 3)))


class TestActivations:
    def test_gelu_values(self):
        # GELU(0) = 0; GELU(x) ~ x for large x; ~0 for very negative x.
        out = gelu(Tensor([0.0, 10.0, -10.0])).data
        assert out[0] == pytest.approx(0.0)
        assert out[1] == pytest.approx(10.0, rel=1e-3)
        assert out[2] == pytest.approx(0.0, abs=1e-3)

    def test_gelu_grad(self):
        rng = np.random.default_rng(5)
        check_grad(lambda t: gelu(t).sum(), rng.normal(size=(4,)), atol=1e-5)

    def test_relu_matches_tensor_method(self):
        x = Tensor([-1.0, 2.0])
        np.testing.assert_allclose(relu(x).data, [0, 2])

    def test_sigmoid_range_and_symmetry(self):
        out = sigmoid(Tensor([-5.0, 0.0, 5.0])).data
        assert out[1] == pytest.approx(0.5)
        assert out[0] + out[2] == pytest.approx(1.0, abs=1e-9)

    def test_sigmoid_grad(self):
        rng = np.random.default_rng(6)
        check_grad(lambda t: sigmoid(t).sum(), rng.normal(size=(3,)))


class TestLosses:
    def test_cross_entropy_perfect_prediction(self):
        logits = Tensor(np.array([[100.0, 0.0], [0.0, 100.0]]))
        loss = cross_entropy(logits, np.array([0, 1]))
        assert loss.item() == pytest.approx(0.0, abs=1e-6)

    def test_cross_entropy_uniform(self):
        logits = Tensor(np.zeros((2, 4)))
        loss = cross_entropy(logits, np.array([0, 3]))
        assert loss.item() == pytest.approx(np.log(4))

    def test_cross_entropy_grad(self):
        rng = np.random.default_rng(7)
        targets = np.array([0, 2, 1])
        check_grad(
            lambda t: cross_entropy(t, targets), rng.normal(size=(3, 4)), atol=1e-5
        )

    def test_mse_zero_for_identical(self):
        a = Tensor(np.ones((2, 2)))
        assert mse(a, Tensor(np.ones((2, 2)))).item() == 0.0

    def test_l2_reconstruction_matches_mse(self):
        rng = np.random.default_rng(8)
        a = Tensor(rng.normal(size=(3, 4)))
        b = Tensor(rng.normal(size=(3, 4)))
        assert l2_reconstruction(a, b).item() == pytest.approx(mse(a, b).item())


class TestDropout:
    def test_identity_in_eval(self):
        x = Tensor(np.ones((4, 4)))
        out = dropout(x, 0.5, training=False, rng=np.random.default_rng(0))
        assert out is x

    def test_identity_with_zero_rate(self):
        x = Tensor(np.ones((4, 4)))
        out = dropout(x, 0.0, training=True, rng=np.random.default_rng(0))
        assert out is x

    def test_scaling_preserves_expectation(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((200, 200)))
        out = dropout(x, 0.3, training=True, rng=rng)
        assert out.data.mean() == pytest.approx(1.0, abs=0.02)

    def test_mask_applied_to_gradient(self):
        rng = np.random.default_rng(1)
        x = Tensor(np.ones(100), requires_grad=True)
        out = dropout(x, 0.5, training=True, rng=rng)
        out.sum().backward()
        np.testing.assert_allclose(x.grad, out.data)


class TestSTE:
    def test_forward_is_hard_value(self):
        x = Tensor(np.zeros((2, 2)), requires_grad=True)
        hard = np.array([[1.0, 2.0], [3.0, 4.0]])
        np.testing.assert_allclose(ste_hard_assign(x, hard).data, hard)

    def test_backward_is_identity(self):
        x = Tensor(np.zeros((2, 2)), requires_grad=True)
        out = ste_hard_assign(x, np.ones((2, 2)))
        (out * 3.0).sum().backward()
        np.testing.assert_allclose(x.grad, 3 * np.ones((2, 2)))

    def test_shape_mismatch_raises(self):
        x = Tensor(np.zeros((2, 2)), requires_grad=True)
        with pytest.raises(ValueError):
            ste_hard_assign(x, np.ones((3, 2)))


class TestAccuracy:
    def test_perfect(self):
        logits = Tensor(np.eye(3) * 10)
        assert accuracy(logits, np.array([0, 1, 2])) == 1.0

    def test_partial(self):
        logits = Tensor(np.array([[1.0, 0.0], [1.0, 0.0]]))
        assert accuracy(logits, np.array([0, 1])) == 0.5
