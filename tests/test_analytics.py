"""Unit tests for FLOP/arithmetic-intensity accounting (paper §3.3, Fig. 3–4)."""

import pytest

from repro.core import (
    LUTShape,
    flop_reduction,
    gemm_arithmetic_intensity,
    gemm_ops,
    lut_arithmetic_intensity,
    lut_kernel_bytes,
    lutnn_ops,
)


class TestOpCounts:
    def test_gemm_ops_formula(self):
        ops = gemm_ops(4, 8, 16)
        assert ops.total == 2 * 4 * 8 * 16
        assert ops.multiplications == ops.additions
        assert ops.multiplication_fraction == pytest.approx(0.5)

    def test_lutnn_ops_formula(self):
        s = LUTShape(n=4, h=8, f=16, v=2, ct=3)
        ops = lutnn_ops(s)
        assert ops.multiplications == 4 * 8 * 3
        assert ops.additions == 2 * 4 * 8 * 3 + 4 * 16 * 4
        assert ops.total == 3 * 4 * 8 * 3 + 4 * 16 * 4

    def test_empty_opcounts_fraction(self):
        from repro.core.analytics import OpCounts

        assert OpCounts(0, 0).multiplication_fraction == 0.0


class TestFig3Numbers:
    """The paper's headline analytics: 3.66x-18.29x reduction at N=H=F=1024."""

    def test_reduction_range_v_sweep(self):
        reductions = [
            flop_reduction(LUTShape(n=1024, h=1024, f=1024, v=v, ct=16))
            for v in (2, 4, 8, 16)
        ]
        assert reductions == sorted(reductions)  # monotone in V
        assert reductions[0] == pytest.approx(3.66, abs=0.1)
        assert reductions[-1] == pytest.approx(18.29, abs=0.6)

    def test_reduction_ct_sweep_monotone(self):
        reductions = [
            flop_reduction(LUTShape(n=1024, h=1024, f=1024, v=4, ct=ct))
            for ct in (64, 32, 16, 8)
        ]
        assert reductions == sorted(reductions)  # improves as CT shrinks

    def test_multiplication_fraction_range(self):
        """Paper: multiplications are 2.9%-14.3% of LUT-NN's operations."""
        fractions = [
            lutnn_ops(LUTShape(n=1024, h=1024, f=1024, v=v, ct=16)).multiplication_fraction
            for v in (2, 4, 8, 16)
        ]
        assert min(fractions) > 0.025
        assert max(fractions) < 0.15


class TestArithmeticIntensity:
    def test_storage_bytes_composition(self):
        from repro.core import lut_storage_bytes

        s = LUTShape(n=4, h=8, f=16, v=2, ct=3)
        expected = s.index_elements * 1 + s.lut_elements * 1 + s.output_elements * 4
        assert lut_storage_bytes(s) == expected

    def test_traffic_bytes_composition(self):
        s = LUTShape(n=4, h=8, f=16, v=2, ct=3)
        expected = (
            4 * 8 * 4  # CCS activation reads
            + s.index_elements  # byte indices
            + 4 * s.cb * 16 * 4 * 1  # gathered entries, 4B effective... n*cb*f*4
            + 2 * s.output_elements * 4
        )
        # recompute the gather term explicitly: n * cb * f * 4
        expected = 4 * 8 * 4 + s.index_elements + s.n * s.cb * s.f * 4 + 2 * s.output_elements * 4
        assert lut_kernel_bytes(s) == expected

    def test_fig4_intensity_band(self):
        """BERT-like LUT kernels fall in the paper's 0.204-0.288 ops/byte band."""
        n = 64 * 512  # batch 64, seq 512
        shapes = [
            LUTShape(n=n, h=768, f=2304, v=2, ct=16),  # QKV fused
            LUTShape(n=n, h=768, f=768, v=2, ct=16),  # O
            LUTShape(n=n, h=768, f=3072, v=2, ct=16),  # FFN1
            LUTShape(n=n, h=3072, f=768, v=2, ct=16),  # FFN2
        ]
        for s in shapes:
            ai = lut_arithmetic_intensity(s)
            assert 0.20 < ai < 0.29

    def test_lut_far_below_gemm_intensity(self):
        s = LUTShape(n=1024, h=1024, f=1024, v=4, ct=16)
        assert lut_arithmetic_intensity(s) < gemm_arithmetic_intensity(1024, 1024, 1024) / 10

    def test_gemm_intensity_formula(self):
        ai = gemm_arithmetic_intensity(2, 3, 4, dtype_bytes=4)
        assert ai == pytest.approx(2 * 2 * 3 * 4 / ((2 * 3 + 3 * 4 + 2 * 4) * 4))
