"""Unit tests for roofline hosts, workload configs/tasks, and analysis utils."""

import numpy as np
import pytest

from repro.analysis import (
    CPU_PEAK_GOPS,
    format_table,
    gemm_total_ops,
    geomean,
    lut_roofline_points,
    normalize,
    speedups,
    sweep_centroid_count,
    sweep_sub_vector_length,
    traffic_breakdown,
)
from repro.baselines import (
    RooflineDevice,
    a2_gpu,
    cpu_server_fp32,
    cpu_server_int8,
    v100_gpu,
    wimpy_host,
)
from repro.core import LUTShape
from repro.workloads import (
    EVAL_MODELS,
    SyntheticPatchTask,
    SyntheticTextTask,
    as_batches,
    bert_base,
    bert_large,
    opt_style,
    sample_batches,
    vit_huge,
)


class TestRooflineDevice:
    def test_op_time_max_of_roofs(self):
        dev = RooflineDevice("t", peak_flops=1e9, mem_bandwidth=1e9,
                             op_overhead_s=0.0, power_w=1.0)
        assert dev.op_time(2e9, 1e6) == pytest.approx(2.0)  # compute bound
        assert dev.op_time(1e6, 2e9) == pytest.approx(2.0)  # memory bound

    def test_overhead_added(self):
        dev = RooflineDevice("t", 1e9, 1e9, op_overhead_s=1.0, power_w=1.0)
        assert dev.op_time(0, 0) == pytest.approx(1.0)

    def test_rejects_negative(self):
        dev = cpu_server_fp32()
        with pytest.raises(ValueError):
            dev.op_time(-1, 0)

    def test_gemm_time_formula(self):
        dev = RooflineDevice("t", 1e9, 1e12, 0.0, 1.0)
        assert dev.gemm_time(10, 10, 10) == pytest.approx(2000 / 1e9)

    def test_small_k_slower_than_gemm(self):
        dev = cpu_server_fp32()
        assert dev.small_k_gemm_time(1000, 2, 16) > dev.gemm_time(1000, 2, 16)

    def test_small_k_efficiency_improves_with_k(self):
        dev = cpu_server_fp32()
        t2 = dev.small_k_gemm_time(10000, 2, 16)
        t8 = dev.small_k_gemm_time(10000, 8, 16)
        assert t8 < 4 * t2  # sub-linear growth: efficiency rises with k

    def test_small_k_rejects_bad_k(self):
        with pytest.raises(ValueError):
            cpu_server_fp32().small_k_gemm_time(10, 0, 4)

    def test_device_catalogue_ordering(self):
        """INT8 > FP32 on CPU; V100 >> A2; calibrated ratios hold."""
        assert cpu_server_int8().peak_flops == pytest.approx(
            1.8 * cpu_server_fp32().peak_flops
        )
        assert v100_gpu().peak_flops > 5 * a2_gpu().peak_flops
        assert wimpy_host().mem_bandwidth < cpu_server_fp32().mem_bandwidth


class TestWorkloadConfigs:
    def test_paper_model_shapes(self):
        assert bert_base().hidden_dim == 768 and bert_base().num_layers == 12
        assert bert_large().hidden_dim == 1024 and bert_large().num_layers == 24
        assert vit_huge().hidden_dim == 1280 and vit_huge().num_layers == 32
        assert vit_huge().seq_len == 264  # padded from 257 (paper §6.3)

    def test_tokens(self):
        assert bert_base().tokens == 64 * 512

    def test_linear_layer_shapes(self):
        shapes = bert_base().linear_layer_shapes()
        assert shapes == [
            ("QKV", 768, 2304), ("O", 768, 768),
            ("FFN1", 768, 3072), ("FFN2", 3072, 768),
        ]

    def test_rejects_indivisible_heads(self):
        from repro.workloads import TransformerConfig

        with pytest.raises(ValueError):
            TransformerConfig("x", 1, 100, 7, 400, 8, 1)

    def test_opt_style(self):
        c = opt_style(2048)
        assert c.hidden_dim == 2048 and c.ffn_dim == 8192

    def test_with_override(self):
        c = bert_base().with_(batch_size=8)
        assert c.batch_size == 8 and c.hidden_dim == 768

    def test_eval_models_registry(self):
        assert set(EVAL_MODELS) == {"bert-base", "bert-large", "vit-huge"}


class TestSyntheticTasks:
    def test_text_task_shapes_and_cls(self):
        task = SyntheticTextTask(vocab_size=32, seq_len=10, num_classes=4, seed=0)
        tokens, labels = task.sample(20)
        assert tokens.shape == (20, 10)
        assert np.all(tokens[:, 0] == 0)  # [CLS]
        assert labels.shape == (20,)
        assert labels.max() < 4

    def test_text_task_classes_separable(self):
        """Token histograms of different classes must differ clearly."""
        task = SyntheticTextTask(vocab_size=32, seq_len=64, num_classes=2,
                                 peak_mass=0.8, seed=0)
        tokens, labels = task.sample(200)
        hist0 = np.bincount(tokens[labels == 0].ravel(), minlength=32)
        hist1 = np.bincount(tokens[labels == 1].ravel(), minlength=32)
        overlap = np.minimum(hist0, hist1).sum() / max(hist0.sum(), 1)
        assert overlap < 0.5

    def test_text_task_rejects_tiny_vocab(self):
        with pytest.raises(ValueError):
            SyntheticTextTask(vocab_size=3, num_classes=4)

    def test_patch_task_shapes(self):
        task = SyntheticPatchTask(num_patches=6, patch_dim=8, num_classes=3, seed=0)
        patches, labels = task.sample(10)
        assert patches.shape == (10, 6, 8)
        assert labels.max() < 3

    def test_patch_task_noise_validation(self):
        with pytest.raises(ValueError):
            SyntheticPatchTask(noise=-1.0)

    def test_patch_task_prototype_structure(self):
        task = SyntheticPatchTask(num_patches=4, patch_dim=8, num_classes=2,
                                  noise=0.01, seed=0)
        patches, labels = task.sample(50)
        # Low noise -> same-class samples nearly identical.
        for c in range(2):
            group = patches[labels == c]
            if len(group) > 1:
                assert np.std(group, axis=0).max() < 0.05

    def test_batching(self):
        x = np.arange(10)
        y = np.arange(10)
        batches = as_batches(x, y, 4)
        assert [len(b[0]) for b in batches] == [4, 4, 2]

    def test_batching_validation(self):
        with pytest.raises(ValueError):
            as_batches(np.arange(3), np.arange(4), 2)
        with pytest.raises(ValueError):
            as_batches(np.arange(3), np.arange(3), 0)

    def test_sample_batches(self):
        task = SyntheticTextTask(seed=0)
        batches = sample_batches(task, 50, 16)
        assert sum(len(b[1]) for b in batches) == 50


class TestAnalysis:
    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geomean([])
        with pytest.raises(ValueError):
            geomean([1.0, -1.0])

    def test_format_table_alignment(self):
        table = format_table(["a", "bb"], [[1, 2.5], ["xx", 0.001]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "---" in lines[1]

    def test_normalize_and_speedups(self):
        values = {"base": 2.0, "fast": 1.0}
        assert normalize(values, "base") == {"base": 1.0, "fast": 0.5}
        assert speedups(values, "base") == {"base": 1.0, "fast": 2.0}
        with pytest.raises(KeyError):
            normalize(values, "nope")
        with pytest.raises(ValueError):
            normalize({"base": 0.0}, "base")

    def test_fig3_sweeps(self):
        points = sweep_sub_vector_length()
        assert [p.v for p in points] == [2, 4, 8, 16]
        assert points[0].reduction_over_gemm < points[-1].reduction_over_gemm
        ct_points = sweep_centroid_count()
        assert [p.ct for p in ct_points] == [64, 32, 16, 8]
        assert gemm_total_ops() == 2 * 1024**3

    def test_fig4_roofline_points_memory_bound(self):
        for config in (bert_base(), bert_large(), vit_huge()):
            for point in lut_roofline_points(config):
                assert point.memory_bound
                assert point.attainable_gops < CPU_PEAK_GOPS
                assert 0.20 < point.arithmetic_intensity < 0.29

    def test_traffic_breakdown_totals(self):
        s = LUTShape(n=8, h=8, f=8, v=2, ct=4)
        t = traffic_breakdown(s)
        assert t["total_traffic"] == (
            t["index"] + t["gathered_lut"] + t["output"] + t["activations"]
        )
