"""Unit tests for the serving queueing simulation."""

import pytest

from repro.engine import load_sweep, simulate_queue


class TestSimulateQueue:
    def test_low_load_latency_near_service_time(self):
        stats = simulate_queue(service_time_s=1.0, arrival_rate_rps=0.05,
                               num_requests=500, seed=1)
        assert stats.p50_latency_s == pytest.approx(1.0, rel=0.05)
        assert stats.queueing_inflation < 1.2

    def test_high_load_inflates_tail(self):
        low = simulate_queue(1.0, 0.3, num_requests=3000, seed=2)
        high = simulate_queue(1.0, 0.9, num_requests=3000, seed=2)
        assert high.p99_latency_s > 3 * low.p99_latency_s
        assert high.mean_latency_s > low.mean_latency_s

    def test_uniform_arrivals_never_queue_below_capacity(self):
        stats = simulate_queue(1.0, 0.8, arrivals="uniform", num_requests=500)
        assert stats.mean_latency_s == pytest.approx(1.0, rel=1e-6)

    def test_percentiles_ordered(self):
        stats = simulate_queue(0.5, 1.2, num_requests=2000, seed=3)
        assert stats.p50_latency_s <= stats.p95_latency_s <= stats.p99_latency_s

    def test_unstable_load_rejected(self):
        with pytest.raises(ValueError):
            simulate_queue(1.0, 1.0)
        with pytest.raises(ValueError):
            simulate_queue(1.0, 2.0)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            simulate_queue(0.0, 0.5)
        with pytest.raises(ValueError):
            simulate_queue(1.0, -1.0)
        with pytest.raises(ValueError):
            simulate_queue(1.0, 0.5, arrivals="bursty")


class TestLoadSweep:
    def test_latency_monotone_in_utilization(self):
        sweep = load_sweep(0.25, utilizations=(0.3, 0.6, 0.9),
                           num_requests=3000, seed=4)
        means = [s.mean_latency_s for s in sweep]
        assert means == sorted(means)
        assert [round(s.utilization, 2) for s in sweep] == [0.3, 0.6, 0.9]

    def test_rejects_out_of_range_utilization(self):
        with pytest.raises(ValueError):
            load_sweep(1.0, utilizations=(1.2,))
