"""Guard: always-on telemetry must stay cheap.

The instrumented hot path (``AutoTuner.tune``) with the default registry
and tracer attached — but no exporters — must cost < 5% over the same run
with telemetry disabled.  Run-to-run variance of the tuner itself is well
above 5% on a loaded machine, so the guard interleaves the two
configurations and keeps sampling pairs until the running minima satisfy
the bound (or a rep budget runs out): it only fails when the overhead is
*persistently* high, not when the scheduler hiccups once.
"""

import time


from repro import obs
from repro.core import LUTShape
from repro.mapping import AutoTuner
from repro.pim import get_platform

SHAPE = LUTShape(n=1024, h=256, f=512, v=4, ct=16)
MIN_REPS = 3
MAX_REPS = 15
#: 5% relative bound plus a small absolute floor so a sub-millisecond
#: timer blip on a fast machine cannot fail the guard.
RELATIVE_BOUND = 1.05
ABSOLUTE_SLACK_S = 0.002


def _tune_once(platform) -> float:
    tuner = AutoTuner(platform)  # fresh instance: no memoised result
    start = time.perf_counter()
    tuner.tune(SHAPE)
    return time.perf_counter() - start


def test_instrumentation_overhead_under_five_percent():
    platform = get_platform("upmem")
    _tune_once(platform)  # warm numpy / allocator caches off the clock

    enabled_times = []
    disabled_times = []
    try:
        for rep in range(MAX_REPS):
            obs.set_enabled(True)
            enabled_times.append(_tune_once(platform))
            obs.set_enabled(False)
            disabled_times.append(_tune_once(platform))
            if rep + 1 >= MIN_REPS and (
                min(enabled_times)
                <= min(disabled_times) * RELATIVE_BOUND + ABSOLUTE_SLACK_S
            ):
                break
    finally:
        obs.set_enabled(True)

    enabled = min(enabled_times)
    disabled = min(disabled_times)
    assert enabled <= disabled * RELATIVE_BOUND + ABSOLUTE_SLACK_S, (
        f"telemetry overhead too high after {len(enabled_times)} reps: "
        f"{enabled:.4f}s instrumented vs {disabled:.4f}s disabled "
        f"({enabled / disabled - 1:.1%})"
    )


def test_disabled_telemetry_records_nothing():
    platform = get_platform("upmem")
    obs.reset()
    obs.set_enabled(False)
    try:
        AutoTuner(platform).tune(LUTShape(n=512, h=64, f=128, v=4, ct=8))
        assert obs.get_registry().snapshot() == {}
        assert obs.get_tracer().finished_spans() == []
    finally:
        obs.set_enabled(True)
        obs.reset()


def test_null_span_context_is_reentrant():
    obs.set_enabled(False)
    try:
        tracer = obs.get_tracer()
        with tracer.span("a") as outer:
            with tracer.span("b") as inner:
                inner.set_attribute("x", 1)
            assert outer is inner  # shared singleton, by design
    finally:
        obs.set_enabled(True)
