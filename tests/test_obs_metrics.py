"""Unit tests for the metrics half of the telemetry layer."""

import json
import threading

import pytest

from repro import obs
from repro.obs import Histogram, MetricsRegistry, NULL_REGISTRY, Series


@pytest.fixture()
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_starts_at_zero_and_accumulates(self, registry):
        c = registry.counter("c")
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative_increments(self, registry):
        with pytest.raises(ValueError):
            registry.counter("c").inc(-1)

    def test_get_or_create_returns_same_instance(self, registry):
        assert registry.counter("c") is registry.counter("c")

    def test_kind_conflict_raises(self, registry):
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")


class TestGauge:
    def test_unset_gauge_is_none(self, registry):
        assert registry.gauge("g").value is None

    def test_set_and_add(self, registry):
        g = registry.gauge("g")
        g.set(4.0)
        g.add(1.5)
        assert g.value == 5.5

    def test_add_on_unset_starts_from_zero(self, registry):
        g = registry.gauge("g")
        g.add(2.0)
        assert g.value == 2.0


class TestHistogram:
    def test_value_on_edge_lands_in_that_bucket(self):
        h = Histogram("h", buckets=[1.0, 2.0, 4.0])
        h.observe(2.0)  # le=2.0 is inclusive
        counts = dict((edge, count) for edge, count in h.bucket_counts())
        assert counts[2.0] == 1
        assert counts[1.0] == 0 and counts[4.0] == 0

    def test_below_first_edge_and_overflow(self):
        h = Histogram("h", buckets=[1.0, 2.0])
        h.observe(0.5)
        h.observe(100.0)
        buckets = h.bucket_counts()
        assert buckets[0] == (1.0, 1)
        assert buckets[-1] == (None, 1)  # overflow slot

    def test_count_sum_min_max_mean(self):
        h = Histogram("h", buckets=[10.0])
        for v in (1.0, 3.0, 5.0):
            h.observe(v)
        assert h.count == 3
        assert h.sum == pytest.approx(9.0)
        assert h.mean == pytest.approx(3.0)
        snap = h.snapshot()
        assert snap["min"] == 1.0 and snap["max"] == 5.0

    def test_empty_histogram_mean_is_nan(self):
        import math
        assert math.isnan(Histogram("h", buckets=[1.0]).mean)

    def test_rejects_bad_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=[])
        with pytest.raises(ValueError):
            Histogram("h", buckets=[2.0, 1.0])
        with pytest.raises(ValueError):
            Histogram("h", buckets=[1.0, 1.0])

    def test_percentile_exact_matches_numpy(self):
        np = pytest.importorskip("numpy")
        rng = np.random.default_rng(7)
        values = rng.lognormal(size=200)
        hist = Histogram("h", buckets=(0.1, 1.0, 10.0))
        for v in values:
            hist.observe(float(v))
        assert hist.samples_complete
        for q in (0, 25, 50, 90, 95, 99, 100):
            assert hist.percentile(q) == pytest.approx(
                float(np.percentile(values, q)), rel=1e-12
            )

    def test_percentile_bucket_interpolation_after_overflow(self):
        hist = Histogram("h", buckets=(1.0, 2.0, 4.0), sample_capacity=4)
        for v in (0.5, 1.5, 1.5, 2.5, 3.5, 3.5):
            hist.observe(v)
        # Capacity exceeded: exactness is all-or-nothing.
        assert not hist.samples_complete
        p50 = hist.percentile(50)
        assert 1.0 <= p50 <= 2.0  # falls in the (1, 2] bucket
        # Extremes clamp to the observed min/max, not bucket edges.
        assert hist.percentile(0) >= 0.5
        assert hist.percentile(100) <= 3.5

    def test_percentile_validation_and_empty(self):
        hist = Histogram("h", buckets=(1.0,))
        # Empty histograms answer 0.0 (never NaN) for every quantile, so
        # dashboards and gates can compare without isnan guards.
        for q in (0, 50, 100):
            assert hist.percentile(q) == 0.0
        hist.observe(1.0)
        with pytest.raises(ValueError):
            hist.percentile(-1)
        with pytest.raises(ValueError):
            hist.percentile(101)

    def test_percentile_extremes_exact_after_overflow(self):
        # Even when sample capacity is exceeded (bucket interpolation for
        # interior quantiles), q=0 and q=100 return the observed extremes.
        hist = Histogram("h", buckets=(1.0, 2.0, 4.0), sample_capacity=2)
        for v in (0.25, 1.5, 3.75):
            hist.observe(v)
        assert not hist.samples_complete
        assert hist.percentile(0) == 0.25
        assert hist.percentile(100) == 3.75

    def test_percentile_property_vs_numpy(self):
        np = pytest.importorskip("numpy")
        rng = np.random.default_rng(17)
        for trial in range(5):
            values = rng.exponential(size=int(rng.integers(1, 120)))
            hist = Histogram("h", buckets=(0.5, 1.0, 2.0, 4.0))
            for v in values:
                hist.observe(float(v))
            assert hist.samples_complete
            for q in rng.integers(0, 101, size=8):
                assert hist.percentile(int(q)) == pytest.approx(
                    float(np.percentile(values, int(q))), rel=1e-9, abs=1e-12
                )

    def test_zero_capacity_always_interpolates(self):
        hist = Histogram("h", buckets=(1.0, 2.0), sample_capacity=0)
        hist.observe(0.5)
        hist.observe(1.5)
        assert not hist.samples_complete
        assert 0.5 <= hist.percentile(50) <= 2.0

    def test_snapshot_round_trip_preserves_percentiles(self):
        hist = Histogram("h", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 2.5, 3.0, 5.0):
            hist.observe(v)
        snap = hist.snapshot()
        assert snap["samples"] == [0.5, 1.5, 2.5, 3.0, 5.0]
        back = Histogram.from_snapshot("h", snap)
        for q in (0, 50, 95, 100):
            assert back.percentile(q) == hist.percentile(q)
        assert back.snapshot() == snap

    def test_snapshot_round_trip_without_samples(self):
        hist = Histogram("h", buckets=(1.0, 2.0), sample_capacity=1)
        hist.observe(0.5)
        hist.observe(1.5)  # overflows capacity; samples dropped
        snap = hist.snapshot()
        assert "samples" not in snap
        back = Histogram.from_snapshot("h", snap)
        assert not back.samples_complete
        assert back.snapshot() == snap

    def test_default_time_buckets_are_ascending(self):
        edges = obs.DEFAULT_TIME_BUCKETS
        assert list(edges) == sorted(edges)
        assert edges[0] <= 1e-6 and edges[-1] >= 100.0


class TestSeries:
    def test_points_keep_global_indices_after_truncation(self):
        s = Series("s", capacity=3)
        for v in range(5):
            s.append(float(v))
        assert s.count == 5
        assert s.points() == [(2, 2.0), (3, 3.0), (4, 4.0)]
        assert s.values() == [2.0, 3.0, 4.0]

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            Series("s", capacity=0)


class TestRegistry:
    def test_snapshot_is_json_serializable(self, registry):
        registry.counter("a").inc()
        registry.gauge("b").set(1.0)
        registry.histogram("c", buckets=[1.0]).observe(0.5)
        registry.series("d").append(2.0)
        snap = json.loads(registry.to_json())
        assert set(snap) == {"a", "b", "c", "d"}
        assert snap["a"] == {"type": "counter", "value": 1.0}
        assert snap["c"]["count"] == 1
        assert snap["d"]["points"] == [[0, 2.0]]

    def test_reset_clears_instruments(self, registry):
        registry.counter("a")
        registry.reset()
        assert len(registry) == 0 and "a" not in registry

    def test_thread_safety_of_counter(self, registry):
        c = registry.counter("c")

        def work():
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 4000

    def test_null_registry_records_nothing(self):
        NULL_REGISTRY.counter("x").inc(5)
        NULL_REGISTRY.histogram("y").observe(1.0)
        assert NULL_REGISTRY.snapshot() == {}


class TestDefaults:
    def test_disable_swaps_in_null_implementations(self):
        obs.set_enabled(False)
        try:
            assert obs.get_registry() is NULL_REGISTRY
            assert obs.get_tracer() is obs.NULL_TRACER
            with obs.get_tracer().span("anything") as sp:
                sp.set_attribute("k", 1)
        finally:
            obs.set_enabled(True)
        assert obs.get_registry() is not NULL_REGISTRY

    def test_set_registry_returns_previous(self):
        mine = MetricsRegistry()
        old = obs.set_registry(mine)
        try:
            assert obs.get_registry() is mine
        finally:
            obs.set_registry(old)
