"""Regression tests for the falsy-argument sweep.

Several call sites used Python truthiness (``if args.layers:``,
``dtype_bytes or platform...``) to detect "flag not given", which makes
an explicit ``0`` indistinguishable from absent — the option is silently
ignored instead of rejected.  These tests pin the fixed behavior:
presence is resolved with ``is None``, and explicit non-positive values
are hard errors (CLI exit code 2, or ``ValueError`` at the library
layer).
"""

import pytest

from repro import cli
from repro.cli import _apply_layers_override, _resolve_slo_s
from repro.pim import get_platform
from repro.pim.gemm_kernels import gemm_on_pim, gemv_sequence_on_pim
from repro.workloads import bert_base


class TestHelpers:
    def test_layers_none_keeps_config(self):
        config = bert_base()
        assert _apply_layers_override(config, None) is config

    def test_layers_positive_overrides(self):
        config = _apply_layers_override(bert_base(), 3)
        assert config.num_layers == 3

    @pytest.mark.parametrize("bad", [0, -1])
    def test_layers_nonpositive_rejected(self, bad):
        with pytest.raises(ValueError, match="--layers"):
            _apply_layers_override(bert_base(), bad)

    def test_slo_none_uses_default(self):
        assert _resolve_slo_s(None, 1.5, "--slo-ttft-ms") == 1.5

    def test_slo_value_converts_ms(self):
        assert _resolve_slo_s(250.0, 1.5, "--slo-ttft-ms") == 0.25

    @pytest.mark.parametrize("bad", [0.0, -5.0])
    def test_slo_nonpositive_rejected(self, bad):
        with pytest.raises(ValueError, match="--slo-e2e-ms"):
            _resolve_slo_s(bad, 1.5, "--slo-e2e-ms")


class TestCLIZeroFlags:
    """``--layers 0`` / ``--slo-*-ms 0`` must exit 2, never run silently."""

    @pytest.mark.parametrize(
        "argv",
        [
            ["faults", "--layers", "0"],
            ["serve-sim", "--layers", "0"],
            ["serve-cluster", "--layers", "0"],
            ["serve-disagg", "--layers", "0"],
            ["moe", "--layers", "0"],
        ],
    )
    def test_zero_layers_exits_2(self, argv, capsys):
        assert cli.main(argv) == 2
        assert "--layers" in capsys.readouterr().err

    @pytest.mark.parametrize("command", ["serve-sim", "serve-cluster", "serve-disagg"])
    @pytest.mark.parametrize("flag", ["--slo-ttft-ms", "--slo-e2e-ms"])
    def test_zero_slo_exits_2(self, command, flag, capsys):
        argv = [command, "--layers", "1", flag, "0"]
        assert cli.main(argv) == 2
        assert flag in capsys.readouterr().err


class TestKernelDtypeBytes:
    """``dtype_bytes=0`` must raise, not silently fall back to the platform."""

    @pytest.fixture(scope="class")
    def upmem(self):
        return get_platform("upmem")

    def test_gemm_zero_dtype_bytes_rejected(self, upmem):
        with pytest.raises(ValueError, match="dtype_bytes"):
            gemm_on_pim(upmem, 64, 64, 64, dtype_bytes=0)

    def test_gemv_zero_dtype_bytes_rejected(self, upmem):
        with pytest.raises(ValueError, match="dtype_bytes"):
            gemv_sequence_on_pim(upmem, 4, 64, 64, dtype_bytes=0)

    def test_default_uses_platform_bytes(self, upmem):
        explicit = gemm_on_pim(upmem, 64, 64, 64,
                               dtype_bytes=upmem.gemm_dtype_bytes)
        assert gemm_on_pim(upmem, 64, 64, 64).total == explicit.total
