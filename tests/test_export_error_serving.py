"""Unit tests for model export, error diagnostics, and generation serving."""

import numpy as np
import pytest

from repro.analysis import ErrorProbe, worst_layers
from repro.baselines import a2_gpu, wimpy_host
from repro.core import (
    ELUTNNCalibrator,
    archive_summary,
    convert_to_lut_nn,
    evaluate_accuracy,
    freeze_all_luts,
    load_lut_model,
    lut_layers,
    save_lut_model,
    set_lut_mode,
)
from repro.engine import GenerationServer
from repro.nn import TextClassifier
from repro.pim import get_platform
from repro.workloads import SyntheticTextTask, opt_style, sample_batches, train_classifier


@pytest.fixture(scope="module")
def converted_setup():
    task = SyntheticTextTask(vocab_size=48, seq_len=12, num_classes=4,
                             peak_mass=0.7, seed=1)
    train = sample_batches(task, 384, 32)
    test = sample_batches(task, 192, 64)

    def factory():
        return TextClassifier(vocab_size=48, max_seq_len=12, num_classes=4,
                              dim=32, num_layers=2, num_heads=4,
                              rng=np.random.default_rng(3))

    model = factory()
    train_classifier(model, train, epochs=6, lr=2e-3)
    calib = sample_batches(task, 96, 32)
    convert_to_lut_nn(model, [b[0] for b in calib], v=2, ct=8,
                      rng=np.random.default_rng(5))
    ELUTNNCalibrator(beta=10.0, lr=1e-3).calibrate(model, calib, epochs=3)
    set_lut_mode(model, "lut")
    freeze_all_luts(model, quantize_int8=True)
    return task, factory, model, calib, test


class TestModelExport:
    def test_round_trip_preserves_outputs(self, converted_setup, tmp_path):
        task, factory, model, calib, test = converted_setup
        path = str(tmp_path / "model.npz")
        save_lut_model(model, path)

        fresh = factory()
        convert_to_lut_nn(fresh, [b[0] for b in calib], v=2, ct=8,
                          rng=np.random.default_rng(99))  # different codebooks
        load_lut_model(fresh, path)

        tokens = calib[0][0]
        np.testing.assert_allclose(
            fresh(tokens).data, model(tokens).data, atol=1e-10
        )

    def test_round_trip_preserves_accuracy(self, converted_setup, tmp_path):
        task, factory, model, calib, test = converted_setup
        path = str(tmp_path / "model.npz")
        save_lut_model(model, path)
        fresh = factory()
        convert_to_lut_nn(fresh, [b[0] for b in calib], v=2, ct=8,
                          rng=np.random.default_rng(7))
        load_lut_model(fresh, path)
        assert evaluate_accuracy(fresh, test) == pytest.approx(
            evaluate_accuracy(model, test)
        )

    def test_archive_summary_sizes(self, converted_setup, tmp_path):
        _, _, model, _, _ = converted_setup
        path = str(tmp_path / "model.npz")
        save_lut_model(model, path)
        sizes = archive_summary(path)
        assert sizes["luts"] > 0 and sizes["codebooks"] > 0
        assert sizes["total"] == sum(
            sizes[k] for k in ("params", "codebooks", "luts", "scales")
        )

    def test_save_requires_lut_layers(self, tmp_path):
        plain = TextClassifier(10, 8, 2, dim=16, num_layers=1, num_heads=2,
                               rng=np.random.default_rng(1))
        with pytest.raises(ValueError):
            save_lut_model(plain, str(tmp_path / "x.npz"))

    def test_load_rejects_mismatched_hyperparams(self, converted_setup, tmp_path):
        task, factory, model, calib, _ = converted_setup
        path = str(tmp_path / "model.npz")
        save_lut_model(model, path)
        other = factory()
        convert_to_lut_nn(other, [b[0] for b in calib], v=4, ct=4,
                          rng=np.random.default_rng(8))
        with pytest.raises(ValueError):
            load_lut_model(other, path)


class TestErrorProbe:
    def test_reports_all_layers(self, converted_setup):
        task, _, model, calib, _ = converted_setup
        reports = ErrorProbe(model).run([b[0] for b in calib[:2]])
        assert len(reports) == len(lut_layers(model))
        for r in reports:
            assert 0.0 <= r.activation_error
            assert 0.0 <= r.output_error
            assert 0.0 < r.codebook_utilization <= 1.0
            assert r.rows_measured > 0

    def test_probe_restores_forwards(self, converted_setup):
        task, _, model, calib, _ = converted_setup
        ErrorProbe(model).run([calib[0][0]])
        for _, layer in lut_layers(model):
            assert "forward" not in layer.__dict__

    def test_worst_layers_sorted(self, converted_setup):
        task, _, model, calib, _ = converted_setup
        reports = ErrorProbe(model).run([calib[0][0]])
        worst = worst_layers(reports, k=3)
        assert len(worst) == 3
        assert worst[0].output_error >= worst[-1].output_error

    def test_requires_lut_layers(self):
        plain = TextClassifier(10, 8, 2, dim=16, num_layers=1, num_heads=2,
                               rng=np.random.default_rng(2))
        with pytest.raises(ValueError):
            ErrorProbe(plain).run([np.zeros((2, 8), dtype=int)])

    def test_more_centroids_lower_error(self):
        """Sanity: a finer codebook must reduce the measured error."""
        task = SyntheticTextTask(vocab_size=32, seq_len=10, num_classes=3, seed=6)
        calib = sample_batches(task, 64, 32)

        def probe(ct):
            model = TextClassifier(vocab_size=32, max_seq_len=10, num_classes=3,
                                   dim=32, num_layers=1, num_heads=2,
                                   rng=np.random.default_rng(5))
            convert_to_lut_nn(model, [b[0] for b in calib], v=2, ct=ct,
                              rng=np.random.default_rng(5))
            reports = ErrorProbe(model).run([calib[0][0]])
            return np.mean([r.output_error for r in reports])

        assert probe(16) < probe(2)


class TestGenerationServer:
    @pytest.fixture(scope="class")
    def config(self):
        return opt_style(1024, seq_len=128, batch_size=4)

    def test_report_composition(self, config):
        server = GenerationServer(get_platform("aim"), a2_gpu())
        report = server.run(config, prompt_len=128, generate_len=32)
        assert report.request_latency_s == pytest.approx(
            report.prefill_s + report.decode_s
        )
        assert report.per_token_decode_s == pytest.approx(report.decode_s / 32)
        assert report.time_to_first_token_s == report.prefill_s

    def test_zero_generation(self, config):
        server = GenerationServer(get_platform("aim"), a2_gpu())
        report = server.run(config, generate_len=0)
        assert report.decode_s == 0.0
        assert report.per_token_decode_s == 0.0

    def test_rejects_negative_generation(self, config):
        server = GenerationServer(get_platform("aim"), a2_gpu())
        with pytest.raises(ValueError):
            server.run(config, generate_len=-1)

    def test_lut_nn_serving_beats_native(self, config):
        """The combined request: LUT-NN wins both phases on PIM."""
        platform = get_platform("aim")
        host = a2_gpu()
        lut = GenerationServer(platform, host, lut_nn=True).run(
            config, prompt_len=128, generate_len=64
        )
        native = GenerationServer(platform, host, lut_nn=False).run(
            config, prompt_len=128, generate_len=64
        )
        assert lut.prefill_s < native.prefill_s
        assert lut.request_latency_s < native.request_latency_s

    def test_longer_prompts_cost_more_prefill(self, config):
        server = GenerationServer(get_platform("aim"), a2_gpu())
        short = server.run(config, prompt_len=64, generate_len=8)
        long = server.run(config, prompt_len=256, generate_len=8)
        assert long.prefill_s > short.prefill_s

    def test_upmem_serving_runs(self, config):
        server = GenerationServer(get_platform("upmem"), wimpy_host())
        report = server.run(config, prompt_len=128, generate_len=8)
        assert report.request_latency_s > 0
