"""Disaggregated prefill/decode pool scheduler tests.

Covers the :mod:`repro.engine.disagg` two-pool simulator: placement
policies, the KV-transfer cost model, exact phase partitioning
(``prefill/`` + ``decode/`` + ``kv_transfer`` == busy seconds at 1e-9),
parity pins against the single-pool scheduler and the FIFO queueing
model, the hybrid cost-dominance property, cluster integration,
telemetry, Chrome-trace pool lanes, the placement sweep, and the
``serve-disagg`` CLI.
"""

import numpy as np
import pytest

from repro import obs
from repro.baselines import prefill_host, wimpy_host
from repro.engine import (
    PLACEMENT_POLICIES,
    ColocatedPlacement,
    DisaggregatedPlacement,
    DisaggScheduler,
    GenerationServer,
    HostPrefillPool,
    HybridPlacement,
    KVTransferModel,
    PoolSnapshot,
    Request,
    RequestScheduler,
    SchedulerPolicy,
    disagg_load_sweep,
    kv_cache_bytes,
    make_placement,
    poisson_requests,
    simulate_queue,
)
from repro.pim import get_platform
from repro.workloads import opt_style


@pytest.fixture(scope="module")
def config():
    return opt_style(256, seq_len=64, batch_size=1)


@pytest.fixture(scope="module")
def server(config):
    return GenerationServer(get_platform("upmem"), wimpy_host())


@pytest.fixture(scope="module")
def cost(server, config):
    # One memoized decode-pool cost model shared by every test scheduler.
    return DisaggScheduler(server, config, placement="colocated").cost


def _sched(server, config, cost, placement, **kw):
    s = DisaggScheduler(server, config, placement=placement, **kw)
    if kw.get("prefill_server") is None:
        s.cost = cost
        s.prefill_cost = cost
    else:
        s.cost = cost
    return s


def _stream(n=24, rate=60.0, prompt=96, generate=32, seed=0, **kw):
    return poisson_requests(
        n, rate, prompt_len=prompt, generate_len=generate, seed=seed, **kw
    )


class TestKVTransferModel:
    def test_kv_bytes_formula(self, config, server):
        model = KVTransferModel(config, server.platform.scatter, kv_dtype_bytes=2)
        expect = 2.0 * config.num_layers * 128 * config.hidden_dim * 2
        assert model.kv_bytes(128) == expect
        assert model.kv_bytes(128, batch=3) == 3 * expect
        assert kv_cache_bytes(config, 128, dtype_bytes=2) == expect

    def test_zero_tokens_cost_nothing(self, config, server):
        model = KVTransferModel(config, server.platform.scatter)
        assert model.transfer_s(0) == 0.0
        assert model.transfer_s(-4) == 0.0
        assert kv_cache_bytes(config, 0) == 0.0

    def test_transfer_charges_interconnect(self, config, server):
        model = KVTransferModel(config, server.platform.scatter, kv_dtype_bytes=2)
        expect = server.platform.scatter.latency(model.kv_bytes(64))
        assert model.transfer_s(64) == pytest.approx(expect, rel=1e-12)

    def test_dtype_validated(self, config, server):
        with pytest.raises(ValueError):
            KVTransferModel(config, server.platform.scatter, kv_dtype_bytes=0)

    def test_server_kv_cache_bytes_uses_platform_dtype(self, config, server):
        expect = kv_cache_bytes(
            config, 64, dtype_bytes=server.platform.gemm_dtype_bytes
        )
        assert server.kv_cache_bytes(config, 64) == expect

    def test_jsonable(self, config, server):
        payload = KVTransferModel(config, server.platform.scatter).to_jsonable()
        assert payload["kv_dtype_bytes"] == 2
        assert payload["interconnect_peak_bytes_per_s"] > 0


class TestPlacementPolicies:
    def test_registry_and_factory(self):
        assert set(PLACEMENT_POLICIES) == {
            "colocated", "disaggregated", "hybrid",
        }
        assert isinstance(make_placement("hybrid"), HybridPlacement)
        instance = ColocatedPlacement()
        assert make_placement(instance) is instance
        with pytest.raises(ValueError, match="unknown placement"):
            make_placement("nope")

    def test_pure_policies_ignore_load(self):
        req = Request(request_id=0, arrival_s=0.0, prompt_len=8, generate_len=8)
        pools = PoolSnapshot(
            now=0.0, prefill_pool_backlog_s=100.0, decode_pool_backlog_s=0.0,
            pool_prefill_s=1.0, colocated_prefill_s=1.0, kv_transfer_s=1.0,
        )
        assert ColocatedPlacement().choose(req, pools) == "colocated"
        assert DisaggregatedPlacement().choose(req, pools) == "pool"

    def test_hybrid_weighs_backlog_and_transfer(self):
        req = Request(request_id=0, arrival_s=0.0, prompt_len=8, generate_len=8)
        # Busy decode pool, idle prefill pool: go to the pool.
        busy_decode = PoolSnapshot(
            now=0.0, prefill_pool_backlog_s=0.0, decode_pool_backlog_s=5.0,
            pool_prefill_s=1.0, colocated_prefill_s=1.0, kv_transfer_s=0.1,
        )
        assert HybridPlacement().choose(req, busy_decode) == "pool"
        # Transfer cost dominating the decode backlog: stay colocated.
        costly_move = PoolSnapshot(
            now=0.0, prefill_pool_backlog_s=0.0, decode_pool_backlog_s=0.5,
            pool_prefill_s=1.0, colocated_prefill_s=1.0, kv_transfer_s=2.0,
        )
        assert HybridPlacement().choose(req, costly_move) == "colocated"
        # Exact tie keeps the request colocated (no free migration).
        tie = PoolSnapshot(
            now=0.0, prefill_pool_backlog_s=0.0, decode_pool_backlog_s=0.0,
            pool_prefill_s=1.0, colocated_prefill_s=1.0, kv_transfer_s=0.0,
        )
        assert HybridPlacement().choose(req, tie) == "colocated"


class TestPhasePartition:
    @pytest.mark.parametrize(
        "placement", ["colocated", "disaggregated", "hybrid"]
    )
    def test_phases_partition_busy_seconds(
        self, server, config, cost, placement
    ):
        result = _sched(server, config, cost, placement).run(_stream())
        assert result.busy_s > 0
        assert sum(result.phase_seconds.values()) == pytest.approx(
            result.busy_s, abs=1e-9
        )
        assert result.prefill_pool_busy_s + result.decode_pool_busy_s + \
            result.kv_transfer_s == pytest.approx(result.busy_s, abs=1e-9)

    def test_partition_holds_on_host_prefill_pool(self, server, config, cost):
        sched = _sched(
            server, config, cost, "disaggregated",
            prefill_server=HostPrefillPool(prefill_host()),
        )
        result = sched.run(_stream())
        assert sum(result.phase_seconds.values()) == pytest.approx(
            result.busy_s, abs=1e-9
        )
        # The host pool's prefill phases (gemm/attention/...) are charged
        # under the prefill class.
        assert any(k.startswith("prefill/") for k in result.phase_seconds)

    def test_kv_transfer_is_first_class_phase(self, server, config, cost):
        result = _sched(server, config, cost, "disaggregated").run(_stream())
        assert result.kv_transfers == 24
        assert result.phase_seconds["kv_transfer"] == pytest.approx(
            result.kv_transfer_s, abs=1e-12
        )
        # Sibling of shard_transfer: top-level in the attribution, and
        # excluded from the prefill/decode classes.
        attribution = result.phase_attribution("kv_transfer")
        assert attribution.phase_seconds == {
            "kv_transfer": pytest.approx(result.kv_transfer_s)
        }
        for cls in ("prefill", "decode"):
            assert "kv_transfer" not in result.phase_attribution(cls).phase_seconds


class TestParity:
    def test_colocated_matches_single_pool_scheduler(
        self, server, config, cost
    ):
        """Under colocated placement the two-pool machinery must vanish."""
        stream = _stream(n=32, rate=80.0, seed=7)
        base_sched = RequestScheduler(server, config)
        base_sched.cost = cost
        base = base_sched.run(stream)
        co = _sched(server, config, cost, "colocated").run(stream)
        assert co.kv_transfers == 0
        assert co.prefill_pool_busy_s == 0.0
        assert co.makespan_s == pytest.approx(base.makespan_s, abs=1e-9)
        assert co.busy_s == pytest.approx(base.busy_s, abs=1e-9)
        for ours, theirs in zip(co.requests, base.requests):
            assert ours.ttft_s == pytest.approx(theirs.ttft_s, abs=1e-9)
            assert ours.e2e_s == pytest.approx(theirs.e2e_s, abs=1e-9)

    def test_disaggregated_prefill_pool_is_fifo_queue(
        self, server, config, cost
    ):
        """A prefill-only stream on the pool is exactly the single-server
        FIFO queue: batch-1 service, zero transfers, sojourns at 1e-9."""
        sched = _sched(server, config, cost, "disaggregated")
        svc = cost.prefill_s(96, 1)
        rate = 0.7 / svc
        n = 50
        stream = poisson_requests(n, rate, prompt_len=96, generate_len=0,
                                  seed=5)
        result = sched.run(stream)
        queue = simulate_queue(svc, rate, num_requests=n, seed=5)
        assert result.kv_transfers == 0
        sojourns = [s.e2e_s for s in result.requests]
        assert float(np.mean(sojourns)) == pytest.approx(
            queue.mean_latency_s, rel=1e-9
        )
        assert max(sojourns) >= queue.p99_latency_s * (1 - 1e-9)

    def test_fifo_service_time_matches_single_pool(self, server, config, cost):
        probe = Request(request_id=-1, arrival_s=0.0, prompt_len=96,
                        generate_len=32)
        base = RequestScheduler(server, config)
        base.cost = cost
        ours = _sched(server, config, cost, "hybrid")
        assert ours.fifo_service_time(probe) == pytest.approx(
            base.fifo_service_time(probe), rel=1e-12
        )


class TestHybridDominance:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("rho", [0.7, 1.0, 1.4])
    def test_hybrid_cost_bounded_by_pure_policies(
        self, server, config, cost, seed, rho
    ):
        """For any seeded stream, hybrid total cost (makespan) is bounded
        by the better pure policy plus the transfer slack it paid."""
        probe = Request(request_id=-1, arrival_s=0.0, prompt_len=96,
                        generate_len=32)
        svc = _sched(server, config, cost, "colocated").fifo_service_time(probe)
        stream = _stream(n=28, rate=rho / svc, seed=seed)
        results = {
            p: _sched(server, config, cost, p).run(stream)
            for p in ("colocated", "disaggregated", "hybrid")
        }
        h = results["hybrid"]
        best = min(
            results["colocated"].makespan_s,
            results["disaggregated"].makespan_s,
        )
        assert h.makespan_s <= best + h.kv_transfer_s + 1e-9
        # And goodput-wise hybrid never loses to either pure policy.
        assert h.goodput_rps >= results["colocated"].goodput_rps * (1 - 1e-9)
        assert h.goodput_rps >= results["disaggregated"].goodput_rps * (1 - 1e-9)


class TestDisaggBehavior:
    def test_disaggregated_beats_colocated_at_overload(
        self, server, config, cost
    ):
        """The acceptance behavior: on a decode-heavy stream at rho >= 1.2
        the decode pool, freed from whole-prompt prefill stalls, retains
        more SLO goodput than the colocated engine."""
        probe = Request(request_id=-1, arrival_s=0.0, prompt_len=128,
                        generate_len=64)
        shared = _sched(server, config, cost, "colocated")
        svc = shared.fifo_service_time(probe)
        policy = SchedulerPolicy(
            slo_ttft_s=2.5 * cost.prefill_s(128, 1), slo_e2e_s=2.5 * svc,
        )
        stream = _stream(n=64, rate=1.2 / svc, prompt=128, generate=64, seed=0)
        co = _sched(server, config, cost, "colocated", policy=policy).run(stream)
        dis = _sched(server, config, cost, "disaggregated", policy=policy).run(stream)
        assert dis.goodput_rps > co.goodput_rps
        assert dis.ttft_p95_s < co.ttft_p95_s

    def test_pool_timeline_lanes_and_ordering(self, server, config, cost):
        result = _sched(server, config, cost, "disaggregated").run(_stream())
        lanes = {lane for lane, _, _, _ in result.pool_timeline}
        assert lanes == {"prefill_pool", "kv_transfer", "decode_pool"}
        for _, _, start, end in result.pool_timeline:
            assert end > start >= 0.0
        # The prefill pool is serialized: segments never overlap.
        pool = sorted(
            (s, e) for lane, _, s, e in result.pool_timeline
            if lane == "prefill_pool"
        )
        for (_, prev_end), (next_start, _) in zip(pool, pool[1:]):
            assert next_start >= prev_end - 1e-12

    def test_colocated_has_no_pool_timeline(self, server, config, cost):
        result = _sched(server, config, cost, "colocated").run(_stream())
        lanes = {lane for lane, _, _, _ in result.pool_timeline}
        assert "prefill_pool" not in lanes
        assert "kv_transfer" not in lanes

    def test_prefill_only_requests_skip_migration(self, server, config, cost):
        stream = _stream(n=10, generate=0)
        result = _sched(server, config, cost, "disaggregated").run(stream)
        assert result.completed == 10
        assert result.kv_transfers == 0
        assert result.kv_transfer_s == 0.0

    def test_infeasible_and_overflow_rejections(self, server, config, cost):
        policy = SchedulerPolicy(max_batch_size=2, max_queue_len=2)
        stream = [
            Request(request_id=0, arrival_s=0.0, prompt_len=32,
                    generate_len=4, batch=4),  # infeasible: batch > cap
        ] + [
            Request(request_id=i, arrival_s=0.0, prompt_len=32, generate_len=4)
            for i in range(1, 8)
        ]
        result = _sched(
            server, config, cost, "colocated", policy=policy
        ).run(stream)
        assert result.rejected >= 1
        assert result.completed + result.rejected == len(stream)

    def test_jsonable_carries_disagg_block(self, server, config, cost):
        dis = _sched(server, config, cost, "disaggregated").run(_stream(n=6))
        payload = dis.to_jsonable()
        assert payload["placement"] == "disaggregated"
        assert payload["disagg"]["kv_transfers"] == 6
        assert payload["disagg"]["prefill_pool_busy_s"] > 0
        base = RequestScheduler(server, config)
        base.cost = cost
        single = base.run(_stream(n=6)).to_jsonable()
        assert single["placement"] is None
        assert single["disagg"] is None

    def test_telemetry_counters(self, server, config, cost):
        obs.reset()
        _sched(server, config, cost, "disaggregated").run(_stream(n=8))
        snapshot = obs.get_registry().snapshot()
        assert snapshot["disagg.requests_completed"]["value"] == 8
        assert snapshot["disagg.kv_transfers"]["value"] == 8
        assert snapshot["disagg.placed_pool"]["value"] == 8
        assert snapshot["disagg.steps"]["value"] > 0
        spans = [s.name for s in obs.get_tracer().finished_spans()]
        assert "disagg.run" in spans
        obs.reset()


class TestChromeTraceLanes:
    def test_schedule_to_chrome_events_pool_lanes(self, server, config, cost):
        result = _sched(server, config, cost, "disaggregated").run(_stream(n=6))
        events = obs.schedule_to_chrome_events(result, pid=7)
        names = {e["args"]["name"] for e in events
                 if e.get("name") == "thread_name"}
        assert names == {"prefill pool", "kv transfer", "decode pool"}
        x = [e for e in events if e.get("ph") == "X"]
        assert len(x) == len(result.pool_timeline)
        assert all(e["pid"] == 7 for e in x)

    def test_build_chrome_trace_accepts_schedules(self, server, config, cost):
        result = _sched(server, config, cost, "hybrid").run(_stream(n=6))
        document = obs.build_chrome_trace(schedules=[result])
        cats = {e.get("cat") for e in document["traceEvents"]}
        assert "disagg" in cats


class TestClusterIntegration:
    def test_cluster_runs_disagg_replicas(self, server, config):
        from repro.cluster import ClusterScheduler

        stream = _stream(n=24, rate=100.0)
        cluster = ClusterScheduler(
            server, config, replicas=2, placement="hybrid"
        )
        result = cluster.run(stream)
        assert result.completed == 24
        assert "kv_transfer" in result.phase_seconds or \
            all(r.kv_transfers == 0 for r in result.replica_results)
        assert sum(result.phase_seconds.values()) == pytest.approx(
            result.busy_s, abs=1e-9
        )

    def test_replicas_share_cost_models(self, server, config):
        from repro.cluster import ClusterScheduler

        cluster = ClusterScheduler(
            server, config, replicas=3, placement="disaggregated",
            prefill_server=HostPrefillPool(prefill_host()),
        )
        assert len({id(s.cost) for s in cluster.schedulers}) == 1
        assert len({id(s.prefill_cost) for s in cluster.schedulers}) == 1

    def test_one_replica_colocated_matches_plain_cluster(self, server, config):
        from repro.cluster import ClusterScheduler

        stream = _stream(n=16, rate=60.0, seed=2)
        plain = ClusterScheduler(server, config, replicas=1).run(stream)
        disagg = ClusterScheduler(
            server, config, replicas=1, placement="colocated"
        ).run(stream)
        assert disagg.makespan_s == pytest.approx(plain.makespan_s, abs=1e-9)
        assert disagg.e2e_p95_s == pytest.approx(plain.e2e_p95_s, abs=1e-9)


class TestSweep:
    def test_sweep_validates_utilizations_upfront(self, server, config):
        with pytest.raises(ValueError, match="utilizations must be positive"):
            disagg_load_sweep(server, config, utilizations=(0.5, 0.0))
        with pytest.raises(ValueError, match="utilizations must be positive"):
            disagg_load_sweep(server, config, utilizations=(-1.0,))

    def test_sweep_rejects_empty_and_duplicate_placements(self, server, config):
        with pytest.raises(ValueError, match="at least one"):
            disagg_load_sweep(server, config, placements=())
        with pytest.raises(ValueError, match="duplicate"):
            disagg_load_sweep(
                server, config, placements=("hybrid", HybridPlacement()),
            )

    def test_sweep_identical_streams_per_cell(self, server, config):
        points = disagg_load_sweep(
            server, config,
            placements=("colocated", "hybrid"),
            utilizations=(0.8,), num_requests=12,
            prompt_len=64, generate_len=16, seed=4,
        )
        assert len(points) == 2
        by_name = {p.placement: p for p in points}
        assert by_name["colocated"].arrival_rate_rps == \
            by_name["hybrid"].arrival_rate_rps
        co_arrivals = [s.arrival_s for s in by_name["colocated"].result.requests]
        hy_arrivals = [s.arrival_s for s in by_name["hybrid"].result.requests]
        assert co_arrivals == hy_arrivals
        payload = points[0].to_jsonable()
        assert payload["placement"] == "colocated"
        assert payload["result"]["completed"] == 12


class TestServeDisaggCLI:
    def test_sweep_json_acceptance(self, capsys):
        import json

        from repro.cli import main

        code = main([
            "serve-disagg", "--model", "bert-base", "--layers", "1",
            "--sweep", "--utilization", "0.8,1.2", "--requests", "40",
            "--prompt-len", "64", "--generate-len", "32", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        cells = {
            (p["target_utilization"], p["placement"]): p["result"]
            for p in payload["points"]
        }
        overload = 1.2
        co = cells[(overload, "colocated")]
        dis = cells[(overload, "disaggregated")]
        hy = cells[(overload, "hybrid")]
        assert dis["goodput_rps"] >= co["goodput_rps"]
        assert hy["goodput_rps"] >= max(co["goodput_rps"], dis["goodput_rps"]) \
            - 1e-9
        for cell in (co, dis, hy):
            assert sum(cell["phase_seconds"].values()) == pytest.approx(
                cell["busy_s"], abs=1e-9
            )

    def test_single_run_host_prefill(self, capsys):
        import json

        from repro.cli import main

        code = main([
            "serve-disagg", "--model", "bert-base", "--layers", "1",
            "--placement", "hybrid", "--prefill-device", "host",
            "--utilization", "1.0", "--requests", "16",
            "--prompt-len", "64", "--generate-len", "16", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["prefill_device"] == "host"
        assert payload["schedule"]["placement"] == "hybrid"
        assert payload["kv_transfer"]["kv_dtype_bytes"] > 0

    def test_rejects_bad_args(self, capsys):
        from repro.cli import main

        assert main(["serve-disagg", "--placement", "sideways"]) == 2
        assert main(["serve-disagg", "--sweep", "--rate", "5"]) == 2
        assert main(["serve-disagg", "--placement",
                     "colocated,hybrid"]) == 2  # multiple need --sweep
        assert main(["serve-disagg", "--utilization", "0"]) == 2
        assert main(["serve-disagg", "--sweep", "--utilization",
                     "0.5,0"]) == 2
        assert main(["serve-disagg", "--rate", "-1"]) == 2
        capsys.readouterr()


class TestPrefillHostDevice:
    def test_prefill_host_is_compute_rich(self):
        host = prefill_host()
        wimpy = wimpy_host()
        assert host.peak_flops > wimpy.peak_flops
        assert host.mem_bandwidth > wimpy.mem_bandwidth

    def test_phase_order_includes_transfer_phases(self):
        assert "kv_transfer" in obs.PHASE_ORDER
        assert "shard_transfer" in obs.PHASE_ORDER
        # Device phases still sort first.
        assert obs.PHASE_ORDER.index("kv_transfer") > \
            obs.PHASE_ORDER.index("launch")
