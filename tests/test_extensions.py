"""Unit tests for extension features: overlap, memory overhead, reports."""

import pytest

from repro.baselines import wimpy_host
from repro.core import LUTShape, lut_memory_overhead
from repro.engine import PIMDLEngine
from repro.pim import get_platform
from repro.workloads import bert_base


class TestMemoryOverhead:
    def test_element_ratio_is_ct_over_v(self):
        # Realistic layer width: the codebook term is then negligible.
        shape = LUTShape(n=8, h=768, f=3072, v=4, ct=16)
        # INT8 tables vs FP16 weights: (CT/V) * (1/2) plus tiny codebooks.
        assert lut_memory_overhead(shape) == pytest.approx(2.0, rel=0.05)

    def test_same_dtype_ratio(self):
        shape = LUTShape(n=8, h=768, f=3072, v=4, ct=16)
        ratio = lut_memory_overhead(shape, weight_dtype_bytes=1, lut_dtype_bytes=1)
        assert ratio == pytest.approx(4.0, rel=0.05)

    def test_monotone_in_ct(self):
        small = LUTShape(n=8, h=64, f=32, v=4, ct=8)
        large = LUTShape(n=8, h=64, f=32, v=4, ct=32)
        assert lut_memory_overhead(large) > lut_memory_overhead(small)

    def test_monotone_in_v(self):
        coarse = LUTShape(n=8, h=64, f=32, v=8, ct=16)
        fine = LUTShape(n=8, h=64, f=32, v=2, ct=16)
        assert lut_memory_overhead(fine) > lut_memory_overhead(coarse)


class TestPipelineOverlap:
    @pytest.fixture(scope="class")
    def engine(self):
        return PIMDLEngine(get_platform("upmem"), wimpy_host(), v=4, ct=16)

    @pytest.fixture(scope="class")
    def config(self):
        return bert_base(seq_len=128, batch_size=8)

    def test_overlap_hides_minimum_side(self, engine, config):
        sequential = engine.run(config)
        pipelined = engine.run(config, pipeline_overlap=True)
        assert pipelined.overlap_hidden_s == pytest.approx(
            min(sequential.host_s, sequential.pim_s)
        )
        assert pipelined.total_s == pytest.approx(
            max(sequential.host_s, sequential.pim_s)
        )

    def test_sequential_default_has_no_overlap(self, engine, config):
        assert engine.run(config).overlap_hidden_s == 0.0

    def test_energy_unchanged_by_overlap_model(self, engine, config):
        # Component busy times are the same; only exposed latency changes.
        sequential = engine.run(config)
        pipelined = engine.run(config, pipeline_overlap=True)
        assert pipelined.energy.host_j == pytest.approx(sequential.energy.host_j)
