"""Unit + property tests for the k-means substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import assign, kmeans, kmeans_plusplus_init


@pytest.fixture
def rng():
    return np.random.default_rng(0)


def well_separated_clusters(rng, k=3, per=40, d=2, spread=0.05):
    centers = rng.normal(size=(k, d)) * 10
    points = np.concatenate(
        [c + spread * rng.normal(size=(per, d)) for c in centers], axis=0
    )
    return centers, points


class TestAssign:
    def test_matches_brute_force(self, rng):
        points = rng.normal(size=(50, 3))
        centroids = rng.normal(size=(4, 3))
        dists = ((points[:, None, :] - centroids[None]) ** 2).sum(-1)
        np.testing.assert_array_equal(assign(points, centroids), dists.argmin(1))

    def test_single_centroid(self, rng):
        points = rng.normal(size=(10, 2))
        assert np.all(assign(points, points[:1]) == 0)


class TestKMeansPlusPlus:
    def test_returns_k_centroids_from_data(self, rng):
        points = rng.normal(size=(30, 4))
        cents = kmeans_plusplus_init(points, 5, rng)
        assert cents.shape == (5, 4)
        # every centroid is an actual data point
        for c in cents:
            assert np.any(np.all(np.isclose(points, c), axis=1))

    def test_identical_points_handled(self, rng):
        points = np.ones((10, 2))
        cents = kmeans_plusplus_init(points, 3, rng)
        assert cents.shape == (3, 2)
        np.testing.assert_allclose(cents, 1.0)


class TestKMeans:
    def test_recovers_separated_clusters(self, rng):
        centers, points = well_separated_clusters(rng)
        found, labels, inertia = kmeans(points, 3, rng=rng)
        # each true center is close to some found centroid
        for c in centers:
            assert np.min(np.linalg.norm(found - c, axis=1)) < 0.5
        assert inertia < points.shape[0] * 0.1

    def test_labels_are_nearest(self, rng):
        points = rng.normal(size=(60, 3))
        centroids, labels, _ = kmeans(points, 4, rng=rng)
        np.testing.assert_array_equal(labels, assign(points, centroids))

    def test_inertia_decreases_with_more_clusters(self, rng):
        points = rng.normal(size=(100, 2))
        _, _, i2 = kmeans(points, 2, rng=np.random.default_rng(1))
        _, _, i8 = kmeans(points, 8, rng=np.random.default_rng(1))
        assert i8 < i2

    def test_k_equals_n(self, rng):
        points = rng.normal(size=(5, 2))
        cents, labels, inertia = kmeans(points, 5, rng=rng)
        assert inertia == pytest.approx(0.0, abs=1e-12)
        assert sorted(labels) == [0, 1, 2, 3, 4]

    def test_rejects_bad_inputs(self, rng):
        points = rng.normal(size=(5, 2))
        with pytest.raises(ValueError):
            kmeans(points, 0)
        with pytest.raises(ValueError):
            kmeans(points, 6)
        with pytest.raises(ValueError):
            kmeans(points.ravel(), 2)

    def test_empty_cluster_reseeded(self):
        # Two far groups and k=3 forces at least one initially empty or
        # degenerate cluster to be re-seeded; all clusters must end non-empty
        # inertia-wise valid.
        rng = np.random.default_rng(2)
        points = np.concatenate([np.zeros((20, 2)), 10 + np.zeros((20, 2))])
        points += 0.01 * rng.normal(size=points.shape)
        cents, labels, inertia = kmeans(points, 3, rng=rng)
        assert np.isfinite(inertia)
        assert cents.shape == (3, 2)


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(8, 40),
    d=st.integers(1, 4),
    k=st.integers(1, 6),
    seed=st.integers(0, 1000),
)
def test_kmeans_invariants(n, d, k, seed):
    """Property: labels are argmin assignments and inertia is consistent."""
    rng = np.random.default_rng(seed)
    points = rng.normal(size=(n, d))
    if n < k:
        with pytest.raises(ValueError):
            kmeans(points, k, rng=rng)
        return
    centroids, labels, inertia = kmeans(points, k, max_iters=10, rng=rng)
    assert centroids.shape == (k, d)
    assert labels.shape == (n,)
    assert 0 <= labels.min() and labels.max() < k
    np.testing.assert_array_equal(labels, assign(points, centroids))
    recomputed = float(np.sum((points - centroids[labels]) ** 2))
    assert inertia == pytest.approx(recomputed)
