"""Tests for the fault-injection and graceful-degradation layer.

Covers the guarantees the resilience design makes:

* an **empty fault plan is a strict no-op** — simulator reports, engine
  reports, and functional outputs are bit-identical to runs without an
  injector;
* injection is **seeded and deterministic** — equal plans corrupt tables
  byte-for-byte identically;
* the per-codebook **checksums catch every injected bit flip**;
* the recovery ladder behaves as specified: transients are retried with
  exponential backoff and escalate when the budget is exhausted, rank
  failures remap onto the surviving capacity (cached under the degraded
  platform's fingerprint), and the last-resort host fallback produces
  output **bit-identical to the trusted host kernel**;
* serving survives a scripted rank kill end to end, with the degradation
  recorded in the ServingReport, the metrics registry, and the trace.
"""

import json

import numpy as np
import pytest

from repro import obs
from repro.baselines import wimpy_host
from repro.cli import main as cli_main
from repro.core import LUTShape
from repro.engine import PIMDLEngine
from repro.engine.serving import GenerationServer
from repro.kernels import lut_checksums, lut_gather_reduce, verify_lut
from repro.mapping import AutoTuner, estimate_latency
from repro.pim import PIMSimulator, get_platform
from repro.resilience import (
    DegradationLedger,
    FaultInjector,
    FaultPlan,
    RankFailure,
    RecoveryManager,
    RetryPolicy,
    run_kernel_with_recovery,
)
from repro.workloads.configs import TransformerConfig

SHAPE = LUTShape(n=8, h=64, f=32, v=4, ct=16)

TINY = TransformerConfig(
    name="tiny", num_layers=1, hidden_dim=128, num_heads=4,
    ffn_dim=256, seq_len=16, batch_size=1,
)


@pytest.fixture(autouse=True)
def _fresh_telemetry():
    obs.reset()
    yield
    obs.reset()


@pytest.fixture(scope="module")
def platform():
    return get_platform("upmem")


@pytest.fixture(scope="module")
def tuned_mapping(platform):
    return AutoTuner(platform).tune(SHAPE).mapping


@pytest.fixture(scope="module")
def functional_inputs():
    rng = np.random.default_rng(42)
    indices = rng.integers(0, SHAPE.ct, size=(SHAPE.n, SHAPE.cb))
    lut = rng.normal(size=(SHAPE.cb, SHAPE.ct, SHAPE.f)).astype(np.float32)
    return indices, lut


class TestFaultPlan:
    def test_empty_plan(self):
        assert FaultPlan().is_empty
        assert not FaultInjector(FaultPlan()).active

    def test_any_fault_makes_it_non_empty(self):
        for plan in (
            FaultPlan(failed_ranks=(1,)),
            FaultPlan(failed_pes=2),
            FaultPlan(straggler_factor=1.5),
            FaultPlan(transfer_timeouts=1),
            FaultPlan(lut_bit_flips=1),
        ):
            assert not plan.is_empty
            assert FaultInjector(plan).active

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(straggler_factor=0.5)
        with pytest.raises(ValueError):
            FaultPlan(failed_ranks=(1, 1))
        with pytest.raises(ValueError):
            FaultPlan(transfer_timeouts=-1)

    def test_round_trip_and_rank_sorting(self):
        plan = FaultPlan(seed=3, failed_ranks=(5, 2), lut_bit_flips=7)
        assert plan.failed_ranks == (2, 5)
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_unknown_scenario_field_rejected(self):
        with pytest.raises(ValueError, match="unknown fault plan fields"):
            FaultPlan.from_dict({"seed": 0, "typo_field": 1})

    def test_scenario_file(self, tmp_path):
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps({"seed": 9, "transfer_timeouts": 2}))
        plan = FaultPlan.from_json(str(path))
        assert plan == FaultPlan(seed=9, transfer_timeouts=2)


class TestEmptyPlanIsStrictNoOp:
    def test_simulator_report_bit_identical(
        self, platform, tuned_mapping, functional_inputs
    ):
        indices, lut = functional_inputs
        sim = PIMSimulator(platform)
        plain = sim.run(SHAPE, tuned_mapping, indices, lut)
        injected = sim.run(
            SHAPE, tuned_mapping, indices, lut, injector=FaultInjector(FaultPlan())
        )
        assert injected.total_s == plain.total_s
        assert injected.distribution_s == plain.distribution_s
        assert injected.kernel_s == plain.kernel_s
        assert injected.gather_s == plain.gather_s
        assert injected.event_counts == plain.event_counts
        assert injected.faults == ()
        assert injected.device_lut is None
        assert np.array_equal(injected.output, plain.output)

    def test_engine_report_identical(self, platform):
        host = wimpy_host()
        plain = PIMDLEngine(platform, host).run(TINY)
        manager = RecoveryManager(FaultInjector(FaultPlan()))
        guarded = PIMDLEngine(platform, host, resilience=manager).run(TINY)
        assert guarded.total_s == plain.total_s
        assert [(o.name, o.device, o.seconds) for o in guarded.ops] == [
            (o.name, o.device, o.seconds) for o in plain.ops
        ]
        assert not manager.ledger.summary().degraded

    def test_serving_report_identical(self, platform):
        host = wimpy_host()
        plain = GenerationServer(platform, host).run(
            TINY, prompt_len=8, generate_len=2
        )
        manager = RecoveryManager(FaultInjector(FaultPlan()))
        guarded = GenerationServer(platform, host, resilience=manager).run(
            TINY, prompt_len=8, generate_len=2
        )
        assert guarded.prefill_s == plain.prefill_s
        assert guarded.decode_s == plain.decode_s
        assert guarded.degraded is None


class TestChecksums:
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("flips", [1, 3, 17])
    def test_catches_every_injected_flip(self, dtype, seed, flips):
        rng = np.random.default_rng(100 + seed)
        lut = rng.normal(size=(4, 8, 16)).astype(dtype)
        reference = lut_checksums(lut)
        injector = FaultInjector(FaultPlan(seed=seed, lut_bit_flips=flips))
        corrupted = injector.corrupt_lut(lut)
        assert not np.array_equal(corrupted, lut), "flips must change the table"
        bad = verify_lut(corrupted, reference)
        assert bad.size > 0, "corruption must fail verification"

    def test_clean_table_passes(self):
        lut = np.arange(4 * 8 * 16, dtype=np.float32).reshape(4, 8, 16)
        assert verify_lut(lut, lut_checksums(lut)).size == 0

    def test_corruption_is_deterministic(self):
        lut = np.random.default_rng(0).normal(size=(4, 8, 16))
        plan = FaultPlan(seed=11, lut_bit_flips=5)
        a = FaultInjector(plan).corrupt_lut(lut)
        b = FaultInjector(plan).corrupt_lut(lut)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, lut)

    def test_host_copy_untouched(self):
        lut = np.random.default_rng(0).normal(size=(4, 8, 16))
        before = lut.copy()
        FaultInjector(FaultPlan(lut_bit_flips=8)).corrupt_lut(lut)
        assert np.array_equal(lut, before)


class TestRetryPolicy:
    def test_exponential_backoff(self):
        policy = RetryPolicy(max_retries=4, base_backoff_s=0.5,
                             backoff_multiplier=3.0)
        assert policy.backoff_s(0) == 0.5
        assert policy.backoff_s(1) == 1.5
        assert policy.backoff_s(2) == 4.5

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_multiplier=0.5)


class TestRecoveryLadder:
    def _manager(self, plan, **policy_kwargs):
        policy = RetryPolicy(base_backoff_s=1e-4, **policy_kwargs)
        return RecoveryManager(FaultInjector(plan), policy=policy)

    def test_transient_retry_succeeds_within_budget(self, platform):
        manager = self._manager(FaultPlan(transfer_timeouts=2), max_retries=3)
        tuner = AutoTuner(platform)
        seconds, device = manager.lut_op_seconds(
            SHAPE, platform, tuner, wimpy_host()
        )
        assert device == "pim"
        summary = manager.ledger.summary()
        assert summary.retries == 2
        assert summary.fallbacks == 0
        # Exponential backoff of both retries is part of the modeled time.
        expected_backoff = 1e-4 * (1 + 2.0)
        assert summary.backoff_s == pytest.approx(expected_backoff)
        assert seconds > tuner.tune(SHAPE).latency.total

    def test_retry_exhaustion_escalates_to_fallback(self, platform):
        manager = self._manager(FaultPlan(transfer_timeouts=10), max_retries=2)
        seconds, device = manager.lut_op_seconds(
            SHAPE, platform, AutoTuner(platform), wimpy_host()
        )
        # No rank died, so remap has nothing to change — the exhausted
        # transient escalates all the way to the host.
        assert device == "host"
        summary = manager.ledger.summary()
        assert summary.retries == 2
        assert summary.fallbacks == 1
        assert summary.fallback_layers == ("lut",)
        assert seconds > 0

    def test_rank_failure_remaps_to_survivors(self, platform):
        manager = self._manager(FaultPlan(failed_ranks=(0,)))
        tuner = AutoTuner(platform)
        seconds, device = manager.lut_op_seconds(
            SHAPE, platform, tuner, wimpy_host()
        )
        assert device == "pim"
        summary = manager.ledger.summary()
        assert summary.remaps == 1
        assert summary.fallbacks == 0
        degraded = manager.injector.degraded_platform(platform)
        assert degraded.ranks == platform.ranks - 1
        assert degraded.num_pes == platform.num_pes - platform.pes_per_rank
        # The remapped mapping is tuned for (and cached under) the
        # degraded platform; its latency is what the op is charged.
        expected = AutoTuner(degraded).tune(SHAPE).latency.total
        assert seconds == pytest.approx(expected)

    def test_remap_recorded_once_per_shape(self, platform):
        manager = self._manager(FaultPlan(failed_ranks=(0,)))
        tuner = AutoTuner(platform)
        first, _ = manager.lut_op_seconds(SHAPE, platform, tuner, wimpy_host())
        second, device = manager.lut_op_seconds(
            SHAPE, platform, tuner, wimpy_host()
        )
        assert device == "pim"
        assert second == pytest.approx(first)
        # Steady state: the op keeps running remapped, but the remap event
        # itself is not re-counted.
        assert manager.ledger.summary().remaps == 1

    def test_total_capacity_loss_falls_back_to_host(self, platform):
        all_ranks = tuple(range(platform.ranks))
        manager = self._manager(FaultPlan(failed_ranks=all_ranks))
        seconds, device = manager.lut_op_seconds(
            SHAPE, platform, AutoTuner(platform), wimpy_host()
        )
        assert device == "host"
        assert manager.ledger.summary().fallbacks == 1
        assert seconds > 0

    def test_checksum_recovery_charged_once(self, platform):
        manager = self._manager(FaultPlan(lut_bit_flips=3))
        tuner = AutoTuner(platform)
        healthy = tuner.tune(SHAPE).latency.total
        first, _ = manager.lut_op_seconds(SHAPE, platform, tuner, wimpy_host())
        second, _ = manager.lut_op_seconds(SHAPE, platform, tuner, wimpy_host())
        assert first > healthy  # re-distribution of the repaired table
        assert second == pytest.approx(healthy)  # table now resident
        assert manager.ledger.summary().checksum_failures == 1

    def test_ladder_emits_metrics_and_spans(self, platform):
        manager = self._manager(FaultPlan(failed_ranks=(0,)))
        manager.lut_op_seconds(SHAPE, platform, AutoTuner(platform), wimpy_host())
        assert obs.get_registry().counter("resilience.remap").value == 1
        names = [s.name for s in obs.get_tracer().finished_spans()]
        assert "resilience.remap" in names


class TestFunctionalRecovery:
    def test_remap_output_bit_identical(
        self, platform, tuned_mapping, functional_inputs
    ):
        indices, lut = functional_inputs
        injector = FaultInjector(FaultPlan(failed_ranks=(0,)))
        ledger = DegradationLedger()
        output, report = run_kernel_with_recovery(
            PIMSimulator(platform), SHAPE, tuned_mapping, indices, lut,
            injector, ledger=ledger,
        )
        assert report is not None, "remapped run should complete on PIM"
        assert ledger.remaps == 1 and ledger.fallbacks == 0
        assert np.array_equal(output, lut_gather_reduce(indices, lut))

    def test_fallback_output_bit_identical(
        self, platform, tuned_mapping, functional_inputs
    ):
        indices, lut = functional_inputs
        injector = FaultInjector(
            FaultPlan(failed_ranks=tuple(range(platform.ranks)))
        )
        ledger = DegradationLedger()
        output, report = run_kernel_with_recovery(
            PIMSimulator(platform), SHAPE, tuned_mapping, indices, lut,
            injector, ledger=ledger,
        )
        assert report is None, "no surviving rank: must fall back to host"
        assert ledger.fallbacks == 1
        assert np.array_equal(output, lut_gather_reduce(indices, lut))

    def test_corrupted_table_detected_then_host_output(
        self, platform, tuned_mapping, functional_inputs
    ):
        indices, lut = functional_inputs
        injector = FaultInjector(FaultPlan(lut_bit_flips=4))
        ledger = DegradationLedger()
        output, report = run_kernel_with_recovery(
            PIMSimulator(platform), SHAPE, tuned_mapping, indices, lut,
            injector, ledger=ledger,
        )
        assert ledger.checksum_failures == 1
        assert ledger.fallbacks == 1
        assert report is None
        # Fallback uses the trusted host copy: exact host-kernel output.
        assert np.array_equal(output, lut_gather_reduce(indices, lut))

    def test_transient_exhaustion_still_correct(
        self, platform, tuned_mapping, functional_inputs
    ):
        indices, lut = functional_inputs
        injector = FaultInjector(FaultPlan(transfer_timeouts=50))
        policy = RetryPolicy(max_retries=2, base_backoff_s=1e-4)
        ledger = DegradationLedger()
        output, report = run_kernel_with_recovery(
            PIMSimulator(platform), SHAPE, tuned_mapping, indices, lut,
            injector, policy=policy, ledger=ledger,
        )
        assert report is None
        assert ledger.retries == 2
        assert ledger.fallbacks == 1
        assert np.array_equal(output, lut_gather_reduce(indices, lut))


class TestFaultsInModels:
    def test_simulator_straggler_stretches_kernel_only(
        self, platform, tuned_mapping
    ):
        sim = PIMSimulator(platform)
        plain = sim.run(SHAPE, tuned_mapping)
        slowed = sim.run(
            SHAPE, tuned_mapping,
            injector=FaultInjector(FaultPlan(straggler_factor=2.0)),
        )
        assert slowed.kernel_s == pytest.approx(2.0 * plain.kernel_s)
        assert slowed.distribution_s == plain.distribution_s
        assert slowed.gather_s == plain.gather_s
        assert "straggler" in slowed.faults

    def test_simulator_rank_failure_raises(self, platform, tuned_mapping):
        injector = FaultInjector(FaultPlan(failed_ranks=(0,)))
        with pytest.raises(RankFailure):
            PIMSimulator(platform).run(SHAPE, tuned_mapping, injector=injector)

    def test_analytical_model_uses_degraded_platform(
        self, platform, tuned_mapping
    ):
        injector = FaultInjector(FaultPlan(failed_ranks=(0, 1)))
        degraded = injector.degraded_platform(platform)
        with_faults = estimate_latency(
            SHAPE, tuned_mapping, platform, fault_injector=injector
        )
        direct = estimate_latency(SHAPE, tuned_mapping, degraded)
        assert with_faults.total == pytest.approx(direct.total)
        assert with_faults.total > estimate_latency(
            SHAPE, tuned_mapping, platform
        ).total * 0.999  # fewer ranks can only slow the shared buses


class TestServingUnderFaults:
    def test_rank_kill_request_completes_and_is_recorded(self, platform):
        manager = RecoveryManager(
            FaultInjector(FaultPlan(seed=1, failed_ranks=(0,))),
            policy=RetryPolicy(base_backoff_s=1e-4),
        )
        server = GenerationServer(platform, wimpy_host(), resilience=manager)
        report = server.run(TINY, prompt_len=8, generate_len=2)

        assert report.request_latency_s > 0
        assert report.degraded is not None and report.degraded.degraded
        assert report.degraded.remaps > 0
        assert report.degraded.fallbacks == 0

        registry = obs.get_registry()
        assert registry.counter("resilience.remap").value > 0
        assert registry.counter("serving.degraded_requests").value == 1
        span_names = [s.name for s in obs.get_tracer().finished_spans()]
        assert "resilience.remap" in span_names
        assert "serving.request" in span_names

    def test_second_request_reaches_steady_state(self, platform):
        manager = RecoveryManager(
            FaultInjector(FaultPlan(failed_ranks=(0,), lut_bit_flips=2)),
            policy=RetryPolicy(base_backoff_s=1e-4),
        )
        server = GenerationServer(platform, wimpy_host(), resilience=manager)
        first = server.run(TINY, prompt_len=8, generate_len=2)
        second = server.run(TINY, prompt_len=8, generate_len=2)
        assert first.degraded.degraded
        # Recovery (remap + table re-send) happened on the first request;
        # the second runs on the remapped steady state.
        assert second.degraded is not None
        assert not second.degraded.degraded
        assert second.prefill_s < first.prefill_s


class TestFaultsCLI:
    def test_scripted_scenario_end_to_end(self, capsys):
        rc = cli_main([
            "faults", "--layers", "1", "--prompt-len", "16",
            "--generate-len", "2", "--requests", "2",
            "--fail-ranks", "0", "--bit-flips", "2",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "remaps" in out
        assert "functional parity: PASS" in out

    def test_json_output_with_scenario_file(self, tmp_path, capsys):
        scenario = tmp_path / "plan.json"
        scenario.write_text(json.dumps({"seed": 7, "transfer_timeouts": 5}))
        rc = cli_main([
            "faults", "--layers", "1", "--prompt-len", "16",
            "--generate-len", "2", "--requests", "1",
            "--scenario", str(scenario), "--json",
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["plan"]["transfer_timeouts"] == 5
        assert payload["degradation"]["degraded"]
        assert payload["degradation"]["retries"] > 0
        assert payload["functional_check"]["bit_identical_to_host"]

    def test_bad_scenario_is_a_usage_error(self, tmp_path, capsys):
        scenario = tmp_path / "bad.json"
        scenario.write_text(json.dumps({"not_a_field": 1}))
        rc = cli_main(["faults", "--scenario", str(scenario)])
        assert rc == 2
        assert "bad fault scenario" in capsys.readouterr().err
