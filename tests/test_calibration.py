"""Unit tests for the eLUT-NN and baseline calibrators."""

import numpy as np
import pytest

from repro.core import (
    BaselineLUTNNCalibrator,
    ELUTNNCalibrator,
    convert_to_lut_nn,
    evaluate_accuracy,
    freeze_all_luts,
    lut_layers,
    set_lut_mode,
)
from repro.nn import TextClassifier


@pytest.fixture
def setup(scope="module"):
    rng = np.random.default_rng(0)
    model = TextClassifier(
        vocab_size=30, max_seq_len=8, num_classes=3,
        dim=16, num_layers=2, num_heads=2, rng=rng,
    )
    tokens = rng.integers(0, 30, size=(16, 8))
    labels = rng.integers(0, 3, size=16)
    convert_to_lut_nn(model, [tokens], v=2, ct=4, rng=rng)
    return model, [(tokens, labels)]


class TestELUTNN:
    def test_calibrate_returns_history(self, setup):
        model, batches = setup
        res = ELUTNNCalibrator(lr=1e-3).calibrate(model, batches, epochs=3)
        assert res.steps == 3
        assert len(res.loss_history) == 3
        assert len(res.reconstruction_history) == 3
        assert res.final_loss == res.loss_history[-1]

    def test_loss_includes_reconstruction_term(self, setup):
        model, batches = setup
        res = ELUTNNCalibrator(beta=1.0, lr=1e-6).calibrate(model, batches, epochs=1)
        assert res.loss_history[0] > res.model_loss_history[0]
        assert res.reconstruction_history[0] > 0

    def test_beta_zero_equals_model_loss(self, setup):
        model, batches = setup
        res = ELUTNNCalibrator(beta=0.0, lr=1e-6).calibrate(model, batches, epochs=1)
        assert res.loss_history[0] == pytest.approx(res.model_loss_history[0])

    def test_reconstruction_decreases_over_training(self, setup):
        model, batches = setup
        res = ELUTNNCalibrator(beta=10.0, lr=5e-3).calibrate(model, batches, epochs=15)
        assert res.reconstruction_history[-1] < res.reconstruction_history[0]

    def test_centroid_only_mode_freezes_weights(self, setup):
        model, batches = setup
        weights_before = {
            name: layer.weight.data.copy() for name, layer in lut_layers(model)
        }
        cal = ELUTNNCalibrator(lr=1e-2, calibrate_weights=False)
        cal.calibrate(model, batches, epochs=2)
        for name, layer in lut_layers(model):
            np.testing.assert_array_equal(layer.weight.data, weights_before[name])

    def test_max_steps_cap(self, setup):
        model, batches = setup
        res = ELUTNNCalibrator(lr=1e-3).calibrate(model, batches, epochs=10, max_steps=4)
        assert res.steps == 4

    def test_rejects_negative_beta(self):
        with pytest.raises(ValueError):
            ELUTNNCalibrator(beta=-1.0)

    def test_rejects_model_without_lut_layers(self):
        rng = np.random.default_rng(1)
        plain = TextClassifier(10, 8, 2, dim=16, num_layers=1, num_heads=2, rng=rng)
        with pytest.raises(ValueError):
            ELUTNNCalibrator().calibrate(plain, [], epochs=1)


class TestBaseline:
    def test_calibrate_runs_and_anneals(self, setup):
        model, batches = setup
        cal = BaselineLUTNNCalibrator(lr=1e-3, anneal_steps=4)
        res = cal.calibrate(model, batches, epochs=4)
        assert res.steps == 4
        temps = [layer.temperature for _, layer in lut_layers(model)]
        # After 4 of 4 schedule steps the temperature has decayed well below 1.
        assert all(t < 0.5 for t in temps)

    def test_full_recipe_schedule_barely_anneals(self, setup):
        model, batches = setup
        cal = BaselineLUTNNCalibrator(lr=1e-3)  # default: 100x budget schedule
        cal.calibrate(model, batches, epochs=2)
        temps = [layer.temperature for _, layer in lut_layers(model)]
        assert all(t > 0.9 for t in temps)

    def test_gumbel_flag_propagates(self, setup):
        model, batches = setup
        BaselineLUTNNCalibrator(lr=1e-3, gumbel_noise=False).calibrate(
            model, batches, epochs=1
        )
        assert all(not layer.gumbel_noise for _, layer in lut_layers(model))

    def test_rejects_model_without_lut_layers(self):
        rng = np.random.default_rng(2)
        plain = TextClassifier(10, 8, 2, dim=16, num_layers=1, num_heads=2, rng=rng)
        with pytest.raises(ValueError):
            BaselineLUTNNCalibrator().calibrate(plain, [], epochs=1)

    def test_max_steps_cap(self, setup):
        model, batches = setup
        res = BaselineLUTNNCalibrator(lr=1e-3).calibrate(
            model, batches, epochs=10, max_steps=3
        )
        assert res.steps == 3


class TestEvaluateAccuracy:
    def test_range_and_mode_restored(self, setup):
        model, batches = setup
        set_lut_mode(model, "lut")
        freeze_all_luts(model)
        model.train()
        acc = evaluate_accuracy(model, batches)
        assert 0.0 <= acc <= 1.0
        assert model.training  # restored

    def test_empty_batches(self, setup):
        model, _ = setup
        assert evaluate_accuracy(model, []) == 0.0
