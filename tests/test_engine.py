"""Unit + integration tests for the inference engines (graph, reports, runs)."""

import pytest

from repro.baselines import cpu_server_fp32, cpu_server_int8, wimpy_host
from repro.engine import (
    ATTENTION,
    ELEMENTWISE,
    GEMMPIMEngine,
    HostEngine,
    LINEAR,
    OperatorSpec,
    PIMDLEngine,
    layer_graph,
    model_graph,
)
from repro.pim import get_platform
from repro.workloads import bert_base


@pytest.fixture(scope="module")
def small_bert():
    # Scaled-down serving shape so tuner-backed tests stay fast.
    return bert_base(seq_len=128, batch_size=8)


@pytest.fixture(scope="module")
def upmem():
    return get_platform("upmem")


class TestGraph:
    def test_layer_graph_operator_set(self, small_bert):
        ops = layer_graph(small_bert)
        names = [op.name for op in ops]
        assert names == [
            "QKV", "Attention", "O", "Add&Norm-1",
            "FFN1", "GELU", "FFN2", "Add&Norm-2",
        ]

    def test_four_linears_per_layer(self, small_bert):
        ops = layer_graph(small_bert)
        linears = [op for op in ops if op.kind == LINEAR]
        assert [op.name for op in linears] == ["QKV", "O", "FFN1", "FFN2"]
        assert linears[0].f == 3 * small_bert.hidden_dim
        assert linears[2].f == small_bert.ffn_dim

    def test_model_graph_repeats_layers(self, small_bert):
        assert len(model_graph(small_bert)) == small_bert.num_layers * 8

    def test_linear_flops_formula(self, small_bert):
        qkv = layer_graph(small_bert)[0]
        n, h = small_bert.tokens, small_bert.hidden_dim
        assert qkv.flops == 2 * n * h * 3 * h

    def test_attention_scales_with_seq_squared(self):
        short = layer_graph(bert_base(seq_len=128, batch_size=8))
        long = layer_graph(bert_base(seq_len=256, batch_size=8))
        attn_s = next(op for op in short if op.kind == ATTENTION)
        attn_l = next(op for op in long if op.kind == ATTENTION)
        # 2x seq -> 2x tokens and 4x per-token scores -> ~4x flops at fixed N?
        # tokens also double, so total grows ~4x.
        assert attn_l.flops > 3.5 * attn_s.flops

    def test_operator_spec_validation(self):
        with pytest.raises(ValueError):
            OperatorSpec("x", "magic", 1.0, 1.0)
        with pytest.raises(ValueError):
            OperatorSpec("x", LINEAR, 1.0, 1.0)  # missing h/f


class TestHostEngine:
    def test_report_rollup(self, small_bert):
        rep = HostEngine(cpu_server_fp32()).run(small_bert)
        assert rep.total_s == pytest.approx(sum(op.seconds for op in rep.ops))
        assert rep.pim_s == 0.0
        assert rep.host_s == rep.total_s
        assert rep.energy.total_j > 0

    def test_int8_faster_than_fp32(self, small_bert):
        fp32 = HostEngine(cpu_server_fp32()).run(small_bert)
        int8 = HostEngine(cpu_server_int8()).run(small_bert)
        assert int8.total_s < fp32.total_s

    def test_category_breakdown_keys(self, small_bert):
        rep = HostEngine(cpu_server_fp32()).run(small_bert)
        breakdown = rep.category_breakdown()
        assert set(breakdown) == {"gemm", ATTENTION, ELEMENTWISE}
        assert sum(breakdown.values()) == pytest.approx(rep.total_s)


class TestGEMMPIMEngine:
    def test_linears_on_pim_rest_on_host(self, small_bert, upmem):
        rep = GEMMPIMEngine(upmem, wimpy_host()).run(small_bert)
        pim_ops = [op for op in rep.ops if op.device == "pim"]
        assert len(pim_ops) == small_bert.num_layers * 4
        assert all(op.category == "gemm" for op in pim_ops)
        assert rep.pim_s > 0 and rep.host_s > 0

    def test_energy_includes_both_components(self, small_bert, upmem):
        rep = GEMMPIMEngine(upmem, wimpy_host()).run(small_bert)
        assert rep.energy.host_j > 0 and rep.energy.pim_j > 0


class TestPIMDLEngine:
    def test_linears_split_into_ccs_and_lut(self, small_bert, upmem):
        rep = PIMDLEngine(upmem, wimpy_host(), v=4, ct=16).run(small_bert)
        cats = rep.category_breakdown()
        assert cats["ccs"] > 0 and cats["lut"] > 0
        lut_ops = [op for op in rep.ops if op.category == "lut"]
        assert len(lut_ops) == small_bert.num_layers * 4
        assert all(op.device == "pim" for op in lut_ops)

    def test_per_operator_names(self, small_bert, upmem):
        rep = PIMDLEngine(upmem, wimpy_host(), v=4, ct=16).run(small_bert)
        per_op = rep.per_operator()
        assert "QKV/LUT" in per_op and "QKV/CCS" in per_op

    def test_rejects_bad_hyperparams(self, upmem):
        with pytest.raises(ValueError):
            PIMDLEngine(upmem, wimpy_host(), v=0)

    def test_rejects_indivisible_hidden(self, upmem):
        engine = PIMDLEngine(upmem, wimpy_host(), v=5, ct=16)
        with pytest.raises(ValueError):
            engine.lut_shape(64, 768, 768)

    def test_beats_gemm_pim_by_an_order_of_magnitude(self, small_bert, upmem):
        """The paper's headline: 12.6x-18.9x over GEMM-on-PIM (Fig. 10)."""
        host = wimpy_host()
        gemm = GEMMPIMEngine(upmem, host).run(small_bert)
        pimdl = PIMDLEngine(upmem, host, v=4, ct=16).run(small_bert)
        assert gemm.total_s / pimdl.total_s > 8

    def test_larger_v_is_faster(self, small_bert, upmem):
        host = wimpy_host()
        v2 = PIMDLEngine(upmem, host, v=2, ct=16).run(small_bert)
        v4 = PIMDLEngine(upmem, host, v=4, ct=16).run(small_bert)
        assert v4.total_s < v2.total_s

    def test_smaller_ct_is_faster(self, small_bert, upmem):
        host = wimpy_host()
        ct8 = PIMDLEngine(upmem, host, v=4, ct=8).run(small_bert)
        ct32 = PIMDLEngine(upmem, host, v=4, ct=32).run(small_bert)
        assert ct8.total_s < ct32.total_s

    def test_throughput_property(self, small_bert, upmem):
        rep = PIMDLEngine(upmem, wimpy_host(), v=4, ct=16).run(small_bert)
        assert rep.throughput_inferences_per_s == pytest.approx(1.0 / rep.total_s)

    def test_hbm_pim_amortizes_lut_by_default(self, small_bert):
        hbm = get_platform("hbm-pim")
        from repro.baselines import a2_gpu

        engine = PIMDLEngine(hbm, a2_gpu(), v=4, ct=16)
        assert engine.tuner.amortize_lut_distribution
