"""Property-based tests (hypothesis) on cross-cutting invariants."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.autograd import Tensor, softmax
from repro.core import (
    Codebooks,
    LUTShape,
    closest_centroid_search,
    flop_reduction,
    gemm_ops,
    hard_replace,
    lutnn_ops,
    quantize_lut,
    squared_distances,
)
from repro.mapping import Mapping, buffer_bytes_required, estimate_latency, is_legal, num_pes_used
from repro.pim import get_platform


# ----------------------------------------------------------------------
# Autograd invariants
# ----------------------------------------------------------------------
@settings(max_examples=30, deadline=None)
@given(
    rows=st.integers(1, 6),
    cols=st.integers(1, 6),
    seed=st.integers(0, 10_000),
)
def test_softmax_is_distribution(rows, cols, seed):
    rng = np.random.default_rng(seed)
    x = Tensor(rng.normal(scale=5.0, size=(rows, cols)))
    out = softmax(x).data
    assert np.all(out >= 0)
    np.testing.assert_allclose(out.sum(axis=-1), np.ones(rows), atol=1e-12)


@settings(max_examples=30, deadline=None)
@given(
    shape=st.tuples(st.integers(1, 4), st.integers(1, 4)),
    seed=st.integers(0, 10_000),
)
def test_sum_gradient_is_ones(shape, seed):
    rng = np.random.default_rng(seed)
    t = Tensor(rng.normal(size=shape), requires_grad=True)
    t.sum().backward()
    np.testing.assert_allclose(t.grad, np.ones(shape))


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000), k=st.integers(1, 5))
def test_linear_combination_gradient(seed, k):
    """d/dx (c . x) = c for any constant c (checks matmul + sum routing)."""
    rng = np.random.default_rng(seed)
    c = rng.normal(size=(k,))
    x = Tensor(rng.normal(size=(k,)), requires_grad=True)
    (x * Tensor(c)).sum().backward()
    np.testing.assert_allclose(x.grad, c, atol=1e-12)


# ----------------------------------------------------------------------
# LUT-NN invariants
# ----------------------------------------------------------------------
@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(1, 12),
    cb=st.integers(1, 4),
    ct=st.integers(2, 6),
    v=st.integers(1, 3),
    seed=st.integers(0, 10_000),
)
def test_hard_replace_never_increases_distance(n, cb, ct, v, seed):
    """Snapping to the closest centroid minimizes per-column L2 distance."""
    rng = np.random.default_rng(seed)
    cbs = Codebooks(rng.normal(size=(cb, ct, v)))
    x = rng.normal(size=(n, cb * v))
    replaced = hard_replace(x, cbs)
    dists = squared_distances(x, cbs)
    best = dists.min(axis=-1)
    achieved = ((x - replaced).reshape(n, cb, v) ** 2).sum(-1)
    np.testing.assert_allclose(achieved, best, atol=1e-9)


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(1, 10),
    cb=st.integers(1, 3),
    ct=st.integers(1, 5),
    v=st.integers(1, 3),
    seed=st.integers(0, 10_000),
)
def test_ccs_indices_in_range(n, cb, ct, v, seed):
    rng = np.random.default_rng(seed)
    cbs = Codebooks(rng.normal(size=(cb, ct, v)))
    idx = closest_centroid_search(rng.normal(size=(n, cb * v)), cbs)
    assert idx.shape == (n, cb)
    assert idx.min() >= 0 and idx.max() < ct


@settings(max_examples=40, deadline=None)
@given(
    cb=st.integers(1, 4),
    ct=st.integers(1, 5),
    f=st.integers(1, 6),
    scale=st.floats(0.01, 100.0),
    seed=st.integers(0, 10_000),
)
def test_quantization_error_bounded_by_half_step(cb, ct, f, scale, seed):
    rng = np.random.default_rng(seed)
    lut = rng.normal(size=(cb, ct, f)) * scale
    q = quantize_lut(lut)
    steps = q.scales[:, None, None]
    assert np.all(np.abs(lut - q.dequantize()) <= steps * 0.5 + 1e-12)


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(1, 64),
    h=st.sampled_from([16, 32, 64]),
    f=st.integers(1, 64),
    v=st.sampled_from([2, 4, 8]),
    ct=st.sampled_from([4, 8, 16]),
)
def test_flop_counts_positive_and_consistent(n, h, f, v, ct):
    shape = LUTShape(n=n, h=h, f=f, v=v, ct=ct)
    lut = lutnn_ops(shape)
    gemm = gemm_ops(n, h, f)
    assert lut.total > 0 and gemm.total > 0
    assert flop_reduction(shape) == pytest.approx(gemm.total / lut.total)
    # Multiplications only come from index calculation.
    assert lut.multiplications == n * h * ct


# ----------------------------------------------------------------------
# Mapping invariants
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(
    n_groups=st.sampled_from([1, 2, 4, 8]),
    pes_per_group=st.sampled_from([1, 2, 4, 8]),
    n_m=st.sampled_from([1, 2, 4]),
    f_m=st.sampled_from([1, 2, 4]),
    cb_m=st.sampled_from([1, 2, 4]),
    traversal_idx=st.integers(0, 5),
    scheme=st.sampled_from(["static", "coarse", "fine"]),
)
def test_legal_mappings_have_positive_finite_latency(
    n_groups, pes_per_group, n_m, f_m, cb_m, traversal_idx, scheme
):
    from repro.mapping import TRAVERSALS

    shape = LUTShape(n=64, h=16, f=32, v=4, ct=8)
    platform = get_platform("upmem")
    mapping = Mapping(
        n_s_tile=shape.n // n_groups,
        f_s_tile=shape.f // pes_per_group,
        n_m_tile=n_m,
        f_m_tile=f_m,
        cb_m_tile=cb_m,
        traversal=TRAVERSALS[traversal_idx],
        load_scheme=scheme,
        cb_load_tile=1,
        f_load_tile=1,
    )
    assume(is_legal(shape, mapping, platform))
    lb = estimate_latency(shape, mapping, platform)
    assert np.isfinite(lb.total) and lb.total > 0
    assert lb.kernel_reduce > 0
    assert num_pes_used(shape, mapping) <= platform.num_pes
    assert buffer_bytes_required(shape, mapping) <= platform.local_memory.buffer_bytes


@settings(max_examples=25, deadline=None)
@given(
    n_scale=st.sampled_from([1, 2, 4]),
    seed=st.integers(0, 100),
)
def test_latency_monotone_in_workload_rows(n_scale, seed):
    """More rows under the same partition shape never get cheaper."""
    platform = get_platform("upmem")
    base = LUTShape(n=64, h=16, f=32, v=4, ct=8)
    scaled = LUTShape(n=64 * n_scale, h=16, f=32, v=4, ct=8)
    m_base = Mapping(16, 8, 4, 4, 2, load_scheme="coarse", cb_load_tile=2, f_load_tile=4)
    m_scaled = m_base.with_(n_s_tile=16 * n_scale)
    t_base = estimate_latency(base, m_base, platform).total
    t_scaled = estimate_latency(scaled, m_scaled, platform).total
    assert t_scaled >= t_base - 1e-12
