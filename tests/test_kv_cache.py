"""Unit tests for KV-cache incremental decoding."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import DecoderLM, KVCache, MultiHeadAttention, TransformerEncoder


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestKVCache:
    def test_append_accumulates(self, rng):
        cache = KVCache()
        assert cache.length == 0
        k1 = rng.normal(size=(2, 4, 3, 8))
        v1 = rng.normal(size=(2, 4, 3, 8))
        keys, values = cache.append(k1, v1)
        assert keys.shape == (2, 4, 3, 8)
        k2 = rng.normal(size=(2, 4, 1, 8))
        keys, values = cache.append(k2, k2)
        assert keys.shape == (2, 4, 4, 8)
        assert cache.length == 4
        np.testing.assert_array_equal(keys[:, :, :3], k1)

    def test_batch_change_rejected(self, rng):
        cache = KVCache()
        cache.append(rng.normal(size=(2, 4, 1, 8)), rng.normal(size=(2, 4, 1, 8)))
        with pytest.raises(ValueError):
            cache.append(rng.normal(size=(3, 4, 1, 8)), rng.normal(size=(3, 4, 1, 8)))

    def test_reset(self, rng):
        cache = KVCache()
        cache.append(rng.normal(size=(1, 2, 1, 4)), rng.normal(size=(1, 2, 1, 4)))
        cache.reset()
        assert cache.length == 0


class TestIncrementalAttention:
    def test_matches_full_forward_token_by_token(self, rng):
        attn = MultiHeadAttention(16, 4, causal=True, rng=rng)
        x = rng.normal(size=(2, 6, 16))
        full = attn(Tensor(x)).data

        cache = KVCache()
        outputs = []
        for t in range(6):
            step = attn.forward_incremental(Tensor(x[:, t : t + 1]), cache)
            outputs.append(step.data)
        incremental = np.concatenate(outputs, axis=1)
        np.testing.assert_allclose(incremental, full, atol=1e-9)

    def test_matches_full_forward_chunked(self, rng):
        attn = MultiHeadAttention(16, 4, causal=True, rng=rng)
        x = rng.normal(size=(1, 8, 16))
        full = attn(Tensor(x)).data
        cache = KVCache()
        first = attn.forward_incremental(Tensor(x[:, :5]), cache).data
        second = attn.forward_incremental(Tensor(x[:, 5:]), cache).data
        np.testing.assert_allclose(
            np.concatenate([first, second], axis=1), full, atol=1e-9
        )

    def test_encoder_stack_incremental(self, rng):
        enc = TransformerEncoder(2, 16, 4, causal=True, rng=rng)
        enc.eval()
        x = rng.normal(size=(2, 5, 16))
        full = enc(Tensor(x)).data
        caches = enc.make_caches()
        outputs = []
        for t in range(5):
            outputs.append(enc.forward_incremental(Tensor(x[:, t : t + 1]), caches).data)
        np.testing.assert_allclose(np.concatenate(outputs, axis=1), full, atol=1e-9)

    def test_cache_count_validated(self, rng):
        enc = TransformerEncoder(2, 16, 4, causal=True, rng=rng)
        with pytest.raises(ValueError):
            enc.forward_incremental(Tensor(rng.normal(size=(1, 1, 16))), [KVCache()])


class TestCachedGeneration:
    def test_cached_equals_uncached_greedy(self, rng):
        model = DecoderLM(vocab_size=24, max_seq_len=20, dim=32,
                          num_layers=3, num_heads=4, rng=rng)
        prompt = np.array([[1, 5, 9], [2, 6, 10]])
        without = model.generate(prompt, new_tokens=10, use_cache=False)
        with_cache = model.generate(prompt, new_tokens=10, use_cache=True)
        np.testing.assert_array_equal(without, with_cache)

    def test_cached_generation_bounds_checked(self, rng):
        model = DecoderLM(vocab_size=24, max_seq_len=8, dim=32,
                          num_layers=1, num_heads=4, rng=rng)
        with pytest.raises(ValueError):
            model.generate(np.array([[1, 2, 3]]), new_tokens=6, use_cache=True)
