"""Unit tests for LUTShape and Codebooks."""

import numpy as np
import pytest

from repro.core import Codebooks, LUTShape


class TestLUTShape:
    def test_derived_quantities(self):
        s = LUTShape(n=64, h=32, f=16, v=4, ct=8)
        assert s.cb == 8
        assert s.lut_elements == 8 * 8 * 16
        assert s.index_elements == 64 * 8
        assert s.output_elements == 64 * 16

    def test_rejects_indivisible_h(self):
        with pytest.raises(ValueError):
            LUTShape(n=4, h=10, f=4, v=3, ct=2)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            LUTShape(n=0, h=4, f=4, v=2, ct=2)
        with pytest.raises(ValueError):
            LUTShape(n=4, h=4, f=4, v=2, ct=-1)

    def test_hashable_for_tuner_cache(self):
        a = LUTShape(n=4, h=4, f=4, v=2, ct=2)
        b = LUTShape(n=4, h=4, f=4, v=2, ct=2)
        assert a == b and hash(a) == hash(b)


class TestCodebooks:
    def test_shape_properties(self):
        cb = Codebooks(np.zeros((3, 4, 2)))
        assert (cb.cb, cb.ct, cb.v, cb.h) == (3, 4, 2, 6)

    def test_rejects_wrong_ndim(self):
        with pytest.raises(ValueError):
            Codebooks(np.zeros((3, 4)))

    def test_from_activations_shapes(self):
        rng = np.random.default_rng(0)
        acts = rng.normal(size=(100, 8))
        cb = Codebooks.from_activations(acts, v=2, ct=4, rng=rng)
        assert cb.centroids.shape == (4, 4, 2)

    def test_from_activations_captures_clusters(self):
        # Activations whose sub-vectors live at two distinct values must
        # yield centroids near those values.
        rng = np.random.default_rng(1)
        a = np.where(rng.random((200, 4)) < 0.5, -3.0, 3.0)
        a += 0.01 * rng.normal(size=a.shape)
        cb = Codebooks.from_activations(a, v=2, ct=4, rng=rng)
        assert np.all(np.min(np.abs(np.abs(cb.centroids) - 3.0), axis=-1) < 0.2)

    def test_from_activations_validation(self):
        rng = np.random.default_rng(2)
        with pytest.raises(ValueError):
            Codebooks.from_activations(rng.normal(size=(10, 7)), v=2, ct=2)
        with pytest.raises(ValueError):
            Codebooks.from_activations(rng.normal(size=(3, 8)), v=2, ct=4)
        with pytest.raises(ValueError):
            Codebooks.from_activations(rng.normal(size=(10,)), v=2, ct=2)

    def test_random_init_statistics(self):
        rng = np.random.default_rng(3)
        acts = rng.normal(5.0, 2.0, size=(500, 8))
        cb = Codebooks.random_init(acts, v=2, ct=16, rng=rng)
        assert cb.centroids.shape == (4, 16, 2)
        # Centroids should be on the activation scale, not unit scale.
        assert 3.0 < cb.centroids.mean() < 7.0

    def test_random_init_validation(self):
        with pytest.raises(ValueError):
            Codebooks.random_init(np.zeros((10, 7)), v=2, ct=2)

    def test_split(self):
        cb = Codebooks(np.zeros((4, 2, 2)))
        x = np.arange(16.0).reshape(2, 8)
        sub = cb.split(x)
        assert sub.shape == (2, 4, 2)
        np.testing.assert_allclose(sub[0, 0], [0, 1])

    def test_split_rejects_wrong_width(self):
        cb = Codebooks(np.zeros((4, 2, 2)))
        with pytest.raises(ValueError):
            cb.split(np.zeros((2, 6)))

    def test_copy_is_independent(self):
        cb = Codebooks(np.zeros((2, 2, 2)))
        cp = cb.copy()
        cp.centroids[:] = 1.0
        assert cb.centroids.sum() == 0.0
