"""Unit tests for multi-tenant PE space sharing."""

import pytest

from repro.baselines import wimpy_host
from repro.engine import (
    best_latency,
    best_throughput,
    slice_platform,
    space_sharing_sweep,
)
from repro.pim import get_platform
from repro.workloads import bert_base


@pytest.fixture(scope="module")
def sweep():
    return space_sharing_sweep(
        get_platform("upmem"), wimpy_host(), bert_base(batch_size=8),
        ways_options=[1, 2, 4],
    )


class TestSlicePlatform:
    def test_resources_divided(self):
        platform = get_platform("upmem")
        half = slice_platform(platform, 2)
        assert half.num_pes == platform.num_pes // 2
        assert half.ranks == platform.ranks // 2
        assert half.broadcast.peak_bytes_per_s == pytest.approx(
            platform.broadcast.peak_bytes_per_s / 2
        )
        assert "slice" in half.name

    def test_one_way_is_identity_sized(self):
        platform = get_platform("upmem")
        assert slice_platform(platform, 1).num_pes == platform.num_pes

    def test_validation(self):
        platform = get_platform("upmem")
        with pytest.raises(ValueError):
            slice_platform(platform, 0)
        with pytest.raises(ValueError):
            slice_platform(platform, 3)  # 1024 % 3 != 0


class TestSpaceSharingSweep:
    def test_latency_grows_sublinearly_with_sharing(self, sweep):
        """Halving the PEs less than doubles latency at small batch — the
        utilization headroom that makes space sharing pay."""
        by_ways = {p.ways: p for p in sweep}
        assert by_ways[2].request_latency_s < 2 * by_ways[1].request_latency_s
        assert by_ways[4].request_latency_s < 4 * by_ways[1].request_latency_s

    def test_throughput_improves_with_sharing_at_small_batch(self, sweep):
        by_ways = {p.ways: p for p in sweep}
        assert by_ways[2].throughput_rps > by_ways[1].throughput_rps
        assert by_ways[4].throughput_rps > by_ways[2].throughput_rps

    def test_latency_ordering(self, sweep):
        latencies = [p.request_latency_s for p in sweep]
        assert latencies == sorted(latencies)

    def test_selectors(self, sweep):
        assert best_latency(sweep).ways == 1
        assert best_throughput(sweep).ways == max(p.ways for p in sweep)

    def test_points_carry_slice_sizes(self, sweep):
        for p in sweep:
            assert p.pes_per_slice * p.ways == 1024
