"""Validate the CI configuration the repo actually ships.

CI breakage is usually discovered in CI; these tests catch the cheap
mistakes locally instead: an unparseable workflow file, a job that stops
running the tier-1 command from ROADMAP.md, a dropped coverage gate, the
lint config disappearing from pyproject.toml, or the benchmark suite
becoming un-collectable (which would break the nightly job at startup).
"""

import os
import re
import subprocess
import sys

import pytest

yaml = pytest.importorskip("yaml")

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
WORKFLOW = os.path.join(REPO, ".github", "workflows", "ci.yml")
PYPROJECT = os.path.join(REPO, "pyproject.toml")


@pytest.fixture(scope="module")
def workflow():
    with open(WORKFLOW) as fh:
        doc = yaml.safe_load(fh)
    assert isinstance(doc, dict)
    return doc


def _triggers(workflow):
    # YAML 1.1 parses the bare key `on` as boolean True.
    return workflow.get("on", workflow.get(True))


def _run_commands(job):
    return [step.get("run", "") for step in job["steps"]]


class TestWorkflowFile:
    def test_parses_and_has_expected_jobs(self, workflow):
        assert set(workflow["jobs"]) == {
            "tests", "lint", "slow-benchmarks", "nightly-bench",
        }

    def test_push_and_pr_trigger_tier1(self, workflow):
        triggers = _triggers(workflow)
        assert "push" in triggers
        assert "pull_request" in triggers

    def test_tests_job_runs_tier1_command_with_coverage(self, workflow):
        job = workflow["jobs"]["tests"]
        runs = " ".join(_run_commands(job))
        # The command ROADMAP.md defines as the tier-1 gate.
        assert "PYTHONPATH=src python -m pytest -x -q" in runs
        assert "--cov=repro" in runs
        assert "--cov-fail-under" in runs

    def test_tests_job_runs_scheduler_suite(self, workflow):
        """The serving scheduler module is an explicit tier-1 member."""
        runs = " ".join(_run_commands(workflow["jobs"]["tests"]))
        assert "tests/test_scheduler.py" in runs

    def test_tests_job_runs_cluster_suite(self, workflow):
        """The cluster serving module is an explicit tier-1 member."""
        runs = " ".join(_run_commands(workflow["jobs"]["tests"]))
        assert "tests/test_cluster.py" in runs

    def test_tests_job_runs_overlap_and_schedule_suites(self, workflow):
        """The overlap pipeline + schedule cache are explicit tier-1 members."""
        runs = " ".join(_run_commands(workflow["jobs"]["tests"]))
        assert "tests/test_overlap.py" in runs
        assert "tests/test_kernel_schedule.py" in runs

    def test_tests_job_runs_disagg_suite(self, workflow):
        """The disaggregated serving module is an explicit tier-1 member."""
        runs = " ".join(_run_commands(workflow["jobs"]["tests"]))
        assert "tests/test_disagg.py" in runs

    def test_tests_job_runs_moe_suite(self, workflow):
        """The MoE workload/placement stack is an explicit tier-1 member."""
        runs = " ".join(_run_commands(workflow["jobs"]["tests"]))
        assert "tests/test_moe.py" in runs

    def test_coverage_floor_raised(self, workflow):
        """The suite has grown; the line-coverage floor moved 70 -> 75."""
        runs = " ".join(_run_commands(workflow["jobs"]["tests"]))
        assert "--cov-fail-under=75" in runs

    def test_concurrency_cancels_superseded_runs(self, workflow):
        """Pushing over an in-flight run cancels it instead of queueing."""
        concurrency = workflow["concurrency"]
        assert concurrency["cancel-in-progress"] is True
        group = concurrency["group"]
        # Grouped per workflow+ref so unrelated branches never cancel each
        # other, and nightly runs are isolated via run_id.
        assert "github.workflow" in group
        assert "github.ref" in group
        assert "github.run_id" in group

    def test_all_actions_pinned_by_major(self, workflow):
        """Every third-party action pins an explicit major version."""
        for name, job in workflow["jobs"].items():
            for step in job["steps"]:
                uses = step.get("uses")
                if uses is None:
                    continue
                assert re.search(r"@v\d+$", uses), (
                    f"{name}: {uses!r} must pin a major version (@vN)"
                )

    def test_overlap_and_schedule_benches_registered(self):
        """The nightly `bench` suites carry the new ids (modeled overlap
        flows through `bench compare --suite modeled` automatically)."""
        from repro.cli import _BENCH_REGISTRY

        assert _BENCH_REGISTRY["sim.overlap-bert-base"][0] == "modeled"
        assert _BENCH_REGISTRY["kernels.schedule-search"][0] == "measured"

    def test_tests_job_python_matrix(self, workflow):
        versions = workflow["jobs"]["tests"]["strategy"]["matrix"]["python-version"]
        assert "3.10" in versions and "3.12" in versions

    def test_pip_caching_enabled(self, workflow):
        for job in workflow["jobs"].values():
            setup = [
                s for s in job["steps"]
                if "setup-python" in str(s.get("uses", ""))
            ]
            assert setup, "every job pins its Python via setup-python"
            assert all(s["with"].get("cache") == "pip" for s in setup)

    def test_coverage_artifact_uploaded(self, workflow):
        steps = workflow["jobs"]["tests"]["steps"]
        uploads = [s for s in steps if "upload-artifact" in str(s.get("uses", ""))]
        assert uploads and uploads[0]["with"]["path"] == "coverage.xml"

    def test_lint_job_runs_ruff(self, workflow):
        runs = _run_commands(workflow["jobs"]["lint"])
        assert any(r.startswith("ruff check") for r in runs)

    def test_lint_findings_surface_as_annotations(self, workflow):
        """Ruff emits GitHub workflow commands -> inline PR annotations."""
        runs = _run_commands(workflow["jobs"]["lint"])
        check = next(r for r in runs if r.startswith("ruff check"))
        assert "--output-format=github" in check

    def test_slow_job_is_nightly_or_manual_only(self, workflow):
        triggers = _triggers(workflow)
        assert "schedule" in triggers
        assert "workflow_dispatch" in triggers
        condition = workflow["jobs"]["slow-benchmarks"]["if"]
        assert "schedule" in condition and "workflow_dispatch" in condition

    def test_slow_job_covers_slow_marker_and_benchmarks(self, workflow):
        runs = " ".join(_run_commands(workflow["jobs"]["slow-benchmarks"]))
        assert "-m slow" in runs
        assert "benchmarks" in runs

    def test_nightly_bench_is_nightly_or_manual_only(self, workflow):
        condition = workflow["jobs"]["nightly-bench"]["if"]
        assert "schedule" in condition and "workflow_dispatch" in condition

    def test_nightly_bench_gates_compares_and_records(self, workflow):
        runs = " ".join(_run_commands(workflow["jobs"]["nightly-bench"]))
        # The regression gate compares BEFORE recording, then appends
        # tonight's results; the comparison is exported as JSON.
        assert "bench compare" in runs
        assert "--record" in runs
        assert "--json" in runs

    def test_nightly_bench_runs_cluster_scaling_gate(self, workflow):
        runs = " ".join(_run_commands(workflow["jobs"]["nightly-bench"]))
        assert "benchmarks/test_ext_cluster_scaling.py" in runs

    def test_nightly_bench_runs_disagg_serving_gate(self, workflow):
        """The disaggregated-vs-colocated goodput gate runs nightly."""
        runs = " ".join(_run_commands(workflow["jobs"]["nightly-bench"]))
        assert "benchmarks/test_ext_disagg_serving.py" in runs

    def test_nightly_bench_runs_moe_placement_gate(self, workflow):
        """The balanced-vs-round-robin MoE placement gate runs nightly."""
        runs = " ".join(_run_commands(workflow["jobs"]["nightly-bench"]))
        assert "benchmarks/test_ext_moe_serving.py" in runs

    def test_moe_bench_registered_as_modeled(self):
        """`bench compare --suite modeled` picks up the MoE latency pin."""
        from repro.cli import _BENCH_REGISTRY

        assert _BENCH_REGISTRY["engine.moe-bert-base"][0] == "modeled"

    def test_nightly_bench_persists_store_and_uploads_comparison(self, workflow):
        steps = workflow["jobs"]["nightly-bench"]["steps"]
        caches = [s for s in steps if "actions/cache" in str(s.get("uses", ""))]
        assert caches and caches[0]["with"]["path"] == ".bench-store"
        assert "restore-keys" in caches[0]["with"]
        uploads = [s for s in steps if "upload-artifact" in str(s.get("uses", ""))]
        assert uploads and uploads[0]["with"]["path"] == "BENCH_*.json"


class TestLintConfig:
    def test_ruff_configured_in_pyproject(self):
        with open(PYPROJECT) as fh:
            text = fh.read()
        assert "[tool.ruff]" in text
        assert "[tool.ruff.lint]" in text
        # The gate selects defect-class rules, not formatting taste.
        assert '"F"' in text and '"E9"' in text

    def test_init_reexports_exempted(self):
        with open(PYPROJECT) as fh:
            text = fh.read()
        assert '"**/__init__.py" = ["F401"]' in text


class TestSuiteHygiene:
    def test_slow_marker_registered_and_excluded_by_default(self):
        with open(PYPROJECT) as fh:
            text = fh.read()
        assert 'addopts = \'-q -m "not slow"\'' in text
        assert "slow:" in text

    @pytest.mark.slow
    def test_benchmarks_are_collection_safe(self):
        """The nightly job must at least *collect* benchmarks/ cleanly."""
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO, "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        proc = subprocess.run(
            [sys.executable, "-m", "pytest", "benchmarks", "--collect-only", "-q"],
            cwd=REPO, env=env, capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
