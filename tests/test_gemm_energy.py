"""Unit tests for PIM GEMM baseline kernels and the energy model."""

import pytest

from repro.pim import (
    EnergyReport,
    gemm_on_pim,
    gemv_sequence_on_pim,
    get_platform,
    host_only_energy,
    linear_layer_on_pim,
    pim_system_energy,
)
from repro.baselines import cpu_server_fp32


class TestGEMMOnPIM:
    def test_breakdown_composition(self):
        b = gemm_on_pim(get_platform("upmem"), 1024, 768, 768)
        assert b.total == pytest.approx(
            b.host_transfer + max(b.compute, b.local_memory) + b.gather + b.launch
        )
        assert b.total > 0

    def test_upmem_compute_bound(self):
        """Software FP32 MACs dominate on UPMEM (paper Fig. 10 line)."""
        b = gemm_on_pim(get_platform("upmem"), 32768, 768, 2304)
        assert b.compute > 10 * b.host_transfer
        assert b.compute > 10 * b.gather

    def test_upmem_per_layer_latency_matches_paper_scale(self):
        """Paper Fig. 10: 38.5s / 68s / 106s per layer for the 3 models."""
        plat = get_platform("upmem")
        n = 64 * 512
        per_layer = sum(
            gemm_on_pim(plat, n, h, f).total
            for h, f in [(768, 2304), (768, 768), (768, 3072), (3072, 768)]
        )
        assert 25 < per_layer < 55  # BERT-base band around the paper's 38.5

    def test_scales_linearly_in_flops(self):
        plat = get_platform("upmem")
        t1 = gemm_on_pim(plat, 1024, 512, 512).compute
        t2 = gemm_on_pim(plat, 2048, 512, 512).compute
        assert t2 == pytest.approx(2 * t1)

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            gemm_on_pim(get_platform("upmem"), 0, 4, 4)


class TestGEMVSequence:
    def test_linear_in_batch_rows(self):
        plat = get_platform("hbm-pim")
        t1 = gemv_sequence_on_pim(plat, 128, 1024, 1024).compute
        t2 = gemv_sequence_on_pim(plat, 256, 1024, 1024).compute
        assert t2 == pytest.approx(2 * t1, rel=1e-6)

    def test_row_overhead_dominates_small_matrices(self):
        plat = get_platform("hbm-pim")
        b = gemv_sequence_on_pim(plat, 128, 256, 256)
        per_row = b.compute / 128
        assert per_row > plat.extras["gemv_row_overhead_s"]

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            gemv_sequence_on_pim(get_platform("aim"), 4, -1, 4)


class TestDispatch:
    def test_upmem_uses_gemm_path(self):
        plat = get_platform("upmem")
        assert linear_layer_on_pim(plat, 64, 32, 32).total == pytest.approx(
            gemm_on_pim(plat, 64, 32, 32).total
        )

    def test_hbm_uses_gemv_path(self):
        plat = get_platform("hbm-pim")
        assert linear_layer_on_pim(plat, 64, 32, 32).total == pytest.approx(
            gemv_sequence_on_pim(plat, 64, 32, 32).total
        )


class TestEnergy:
    def test_pim_system_energy(self):
        plat = get_platform("upmem")
        report = pim_system_energy(plat, host_busy_s=2.0, pim_busy_s=3.0)
        assert report.host_j == pytest.approx(plat.host_power_w * 2.0)
        assert report.pim_j == pytest.approx(plat.pim_power_w * 5.0)
        assert report.total_j == report.host_j + report.pim_j

    def test_host_only_energy(self):
        dev = cpu_server_fp32()
        report = host_only_energy(dev, 4.0)
        assert report.pim_j == 0.0
        assert report.total_j == pytest.approx(dev.power_w * 4.0)

    def test_energy_report_type(self):
        assert isinstance(host_only_energy(cpu_server_fp32(), 1.0), EnergyReport)
