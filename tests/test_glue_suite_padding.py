"""Unit tests for the GLUE-style task suite and PIM sequence padding."""

import numpy as np
import pytest

from repro.nn import TextClassifier
from repro.workloads import (
    CopyDetectionTask,
    SentimentTask,
    TopicTask,
    bert_base,
    default_suite,
    evaluate_suite,
    pad_seq_for_pim,
    sample_batches,
    train_classifier,
    vit_huge,
)
from repro.core import evaluate_accuracy


class TestSentimentTask:
    def test_shapes_and_cls(self):
        task = SentimentTask(vocab_size=32, seq_len=12, seed=0)
        tokens, labels = task.sample(30)
        assert tokens.shape == (30, 12)
        assert np.all(tokens[:, 0] == 0)
        assert set(np.unique(labels)) <= {0, 1}

    def test_label_matches_slice_majority(self):
        task = SentimentTask(vocab_size=32, seq_len=32, margin=0.95, seed=1)
        tokens, labels = task.sample(100)
        split = 1 + (32 - 1) // 2
        positive_counts = ((tokens[:, 1:] >= 1) & (tokens[:, 1:] < split)).sum(axis=1)
        negative_counts = (tokens[:, 1:] >= split).sum(axis=1)
        predicted = (positive_counts > negative_counts).astype(int)
        assert (predicted == labels).mean() > 0.95

    def test_validation(self):
        with pytest.raises(ValueError):
            SentimentTask(vocab_size=3)
        with pytest.raises(ValueError):
            SentimentTask(margin=0.4)

    def test_learnable_by_small_transformer(self):
        task = SentimentTask(vocab_size=32, seq_len=16, margin=0.8, seed=2)
        model = TextClassifier(vocab_size=32, max_seq_len=16, num_classes=2,
                               dim=32, num_layers=2, num_heads=4,
                               rng=np.random.default_rng(0))
        train_classifier(model, sample_batches(task, 512, 32), epochs=6, lr=2e-3)
        assert evaluate_accuracy(model, sample_batches(task, 256, 64)) > 0.85


class TestCopyDetectionTask:
    def test_shapes(self):
        task = CopyDetectionTask(vocab_size=32, seq_len=17, seed=0)
        tokens, labels = task.sample(20)
        assert tokens.shape == (20, 17)
        assert set(np.unique(labels)) <= {0, 1}

    def test_positive_samples_share_tokens(self):
        task = CopyDetectionTask(vocab_size=64, seq_len=17, copy_fraction=1.0, seed=1)
        tokens, labels = task.sample(100)
        seg = task.segment
        overlaps = []
        for row, label in zip(tokens, labels):
            first = set(row[1 : 1 + seg].tolist())
            second = set(row[1 + seg :].tolist())
            overlaps.append((label, len(first & second) / seg))
        pos = np.mean([o for lab, o in overlaps if lab == 1])
        neg = np.mean([o for lab, o in overlaps if lab == 0])
        assert pos > neg + 0.3

    def test_validation(self):
        with pytest.raises(ValueError):
            CopyDetectionTask(seq_len=16)  # segments don't split evenly
        with pytest.raises(ValueError):
            CopyDetectionTask(copy_fraction=0.0)


class TestSuite:
    def test_default_suite_composition(self):
        suite = default_suite()
        assert set(suite) == {"sentiment", "topic", "copy"}
        assert isinstance(suite["topic"], TopicTask)

    def test_evaluate_suite_collects_scores(self):
        suite = default_suite()
        results = evaluate_suite(lambda name, task: 0.5, suite)
        assert results == [(name, 0.5) for name in suite]

    def test_evaluate_suite_rejects_bad_scores(self):
        with pytest.raises(ValueError):
            evaluate_suite(lambda name, task: 1.5, default_suite())


class TestPadding:
    def test_reproduces_the_papers_vit_padding(self):
        config = pad_seq_for_pim(vit_huge(seq_len=257), num_pes=1024)
        assert config.seq_len == 264  # paper §6.3

    def test_already_divisible_unchanged(self):
        config = bert_base()  # 64 * 512 = 32768 = 32 * 1024
        assert pad_seq_for_pim(config) is config

    def test_result_always_balanced(self):
        for seq in (100, 129, 257, 511):
            config = pad_seq_for_pim(bert_base(seq_len=seq, batch_size=24))
            assert (config.tokens % 1024) == 0
            assert config.seq_len >= seq

    def test_rejects_bad_pe_count(self):
        with pytest.raises(ValueError):
            pad_seq_for_pim(bert_base(), num_pes=0)
