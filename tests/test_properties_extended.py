"""Additional property-based tests over the extension modules."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core import LUTShape, lut_memory_overhead
from repro.mapping import (
    Mapping,
    MappingStore,
    TuningResult,
    estimate_latency,
    is_legal,
    mapping_from_dict,
    mapping_to_dict,
)
from repro.pim import get_platform

TRAVERSAL_OPTIONS = [
    ("n", "f", "cb"), ("n", "cb", "f"), ("f", "n", "cb"),
    ("f", "cb", "n"), ("cb", "n", "f"), ("cb", "f", "n"),
]


@settings(max_examples=50, deadline=None)
@given(
    n_s=st.sampled_from([16, 64, 256]),
    f_s=st.sampled_from([8, 32, 128]),
    n_m=st.sampled_from([1, 4, 16]),
    f_m=st.sampled_from([1, 4, 8]),
    cb_m=st.sampled_from([1, 2, 4]),
    traversal=st.sampled_from(TRAVERSAL_OPTIONS),
    scheme=st.sampled_from(["static", "coarse", "fine"]),
    cb_l=st.sampled_from([1, 2]),
    f_l=st.sampled_from([1, 4]),
)
def test_mapping_serialization_round_trip(
    n_s, f_s, n_m, f_m, cb_m, traversal, scheme, cb_l, f_l
):
    """Every Mapping survives dict (JSON) serialization exactly."""
    assume(n_m <= n_s and f_m <= f_s)
    mapping = Mapping(n_s, f_s, n_m, f_m, cb_m, traversal, scheme,
                      cb_load_tile=cb_l, f_load_tile=f_l)
    assert mapping_from_dict(mapping_to_dict(mapping)) == mapping


@settings(max_examples=20, deadline=None)
@given(
    n=st.sampled_from([64, 256]),
    h=st.sampled_from([16, 32]),
    f=st.sampled_from([32, 64]),
)
def test_store_round_trip_preserves_results(n, h, f):
    shape = LUTShape(n=n, h=h, f=f, v=4, ct=4)
    platform = get_platform("upmem")
    mapping = Mapping(n_s_tile=n // 4, f_s_tile=f // 2, n_m_tile=4, f_m_tile=4,
                      cb_m_tile=2, load_scheme="coarse",
                      cb_load_tile=2, f_load_tile=4)
    assume(is_legal(shape, mapping, platform))
    result = TuningResult(
        shape=shape,
        mapping=mapping,
        latency=estimate_latency(shape, mapping, platform),
        candidates_evaluated=1,
    )
    store = MappingStore()
    store.put("upmem", result)
    loaded = store.get("upmem", shape)
    assert loaded.mapping == mapping
    assert loaded.latency.total == pytest.approx(result.latency.total)


@settings(max_examples=40, deadline=None)
@given(
    v=st.sampled_from([2, 4, 8]),
    ct=st.sampled_from([4, 8, 16, 32]),
    h=st.sampled_from([256, 768]),
    f=st.sampled_from([256, 1024]),
)
def test_memory_overhead_scales_like_ct_over_v(v, ct, h, f):
    shape = LUTShape(n=16, h=h, f=f, v=v, ct=ct)
    ratio = lut_memory_overhead(shape, weight_dtype_bytes=1, lut_dtype_bytes=1)
    # Tables dominate; the codebook term only adds a small epsilon.
    assert ratio == pytest.approx(ct / v, rel=0.2)
    assert ratio >= ct / v


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    new_tokens=st.integers(0, 6),
)
def test_generation_prefix_preserved(seed, new_tokens):
    """Generated sequences always extend (never modify) the prompt."""
    from repro.nn import DecoderLM

    rng = np.random.default_rng(seed)
    model = DecoderLM(vocab_size=16, max_seq_len=12, dim=16,
                      num_layers=1, num_heads=2, rng=rng)
    prompt = rng.integers(0, 16, size=(2, 3))
    out = model.generate(prompt, new_tokens=new_tokens, use_cache=True)
    assert out.shape == (2, 3 + new_tokens)
    np.testing.assert_array_equal(out[:, :3], prompt)
    assert np.all((0 <= out) & (out < 16))


@settings(max_examples=20, deadline=None)
@given(
    cb=st.integers(1, 3),
    ct=st.integers(1, 4),
    f=st.integers(1, 5),
    seed=st.integers(0, 1000),
)
def test_quantization_idempotent(cb, ct, f, seed):
    """Quantizing an already-quantized (dequantized) table is lossless."""
    from repro.core import quantize_lut

    rng = np.random.default_rng(seed)
    lut = rng.normal(size=(cb, ct, f)) * 3
    once = quantize_lut(lut).dequantize()
    twice = quantize_lut(once).dequantize()
    np.testing.assert_allclose(twice, once, atol=1e-12)
