"""Unit tests for mapping persistence, kernel tracing, and the CLI."""

import json
import os

import pytest

from repro.cli import main
from repro.core import LUTShape
from repro.mapping import (
    AutoTuner,
    Mapping,
    MappingStore,
    mapping_from_dict,
    mapping_to_dict,
)
from repro.pim import PIMSimulator, get_platform, trace_kernel


@pytest.fixture(scope="module")
def platform():
    return get_platform("upmem")


@pytest.fixture(scope="module")
def tuned(platform):
    shape = LUTShape(n=512, h=64, f=128, v=4, ct=8)
    return shape, AutoTuner(platform).tune(shape)


class TestMappingSerialization:
    def test_round_trip(self):
        m = Mapping(64, 32, 8, 8, 4, traversal=("f", "n", "cb"),
                    load_scheme="coarse", cb_load_tile=2, f_load_tile=4)
        assert mapping_from_dict(mapping_to_dict(m)) == m

    def test_dict_is_json_compatible(self):
        m = Mapping(64, 32, 8, 8, 4)
        assert json.loads(json.dumps(mapping_to_dict(m))) == mapping_to_dict(m)


class TestMappingStore:
    def test_put_get_round_trip(self, tuned):
        shape, result = tuned
        store = MappingStore()
        store.put("upmem", result)
        loaded = store.get("upmem", shape)
        assert loaded.mapping == result.mapping
        assert loaded.latency.total == pytest.approx(result.latency.total)
        assert ("upmem", shape) in store
        assert len(store) == 1

    def test_get_missing_returns_none(self, tuned):
        shape, _ = tuned
        assert MappingStore().get("upmem", shape) is None

    def test_save_load_file(self, tuned, tmp_path):
        shape, result = tuned
        path = str(tmp_path / "mappings.json")
        store = MappingStore()
        store.put("upmem", result)
        store.save(path)
        assert os.path.exists(path)

        reloaded = MappingStore(path)
        assert reloaded.get("upmem", shape).mapping == result.mapping

    def test_save_without_path_raises(self):
        with pytest.raises(ValueError):
            MappingStore().save()

    def test_version_check(self, tmp_path):
        path = str(tmp_path / "bad.json")
        with open(path, "w") as fh:
            json.dump({"version": 99, "entries": {}}, fh)
        # Strict on explicit load, lenient (warn + empty) on auto-load.
        with pytest.raises(ValueError):
            MappingStore().load(path)
        with pytest.warns(RuntimeWarning):
            assert len(MappingStore(path)) == 0

    def test_distinct_platforms_do_not_collide(self, tuned):
        shape, result = tuned
        store = MappingStore()
        store.put("upmem", result)
        assert store.get("aim", shape) is None


class TestKernelTrace:
    def test_trace_total_matches_simulator_kernel_time(self, platform, tuned):
        shape, result = tuned
        trace = trace_kernel(shape, result.mapping, platform)
        sim = PIMSimulator(platform).run(shape, result.mapping)
        assert trace.total_s == pytest.approx(sim.kernel_s, rel=1e-9)

    def test_events_are_ordered_and_disjoint(self, platform, tuned):
        shape, result = tuned
        trace = trace_kernel(shape, result.mapping, platform)
        for before, after in zip(trace.events, trace.events[1:]):
            assert after.time_s >= before.end_s - 1e-15

    def test_time_by_kind_sums_to_busy_time(self, platform, tuned):
        shape, result = tuned
        trace = trace_kernel(shape, result.mapping, platform)
        busy = sum(trace.time_by_kind().values())
        assert busy <= trace.total_s + 1e-12
        assert "reduce" in trace.time_by_kind()

    def test_render_produces_rows(self, platform, tuned):
        shape, result = tuned
        text = trace_kernel(shape, result.mapping, platform).render(width=40)
        assert "reduce" in text
        assert "|" in text

    def test_rejects_illegal_mapping(self, platform):
        shape = LUTShape(n=512, h=64, f=128, v=4, ct=8)
        with pytest.raises(ValueError):
            trace_kernel(shape, Mapping(100, 32, 4, 8, 4), platform)

    def test_rejects_oversized_traces(self, platform):
        shape = LUTShape(n=65536, h=2048, f=4096, v=4, ct=16)
        huge = Mapping(n_s_tile=65536, f_s_tile=8, n_m_tile=1, f_m_tile=1,
                       cb_m_tile=1, load_scheme="fine", f_load_tile=1)
        with pytest.raises(ValueError):
            trace_kernel(shape, huge, platform)


class TestCLI:
    def test_platforms_command(self, capsys):
        assert main(["platforms"]) == 0
        out = capsys.readouterr().out
        assert "UPMEM" in out and "AiM" in out

    def test_flops_command(self, capsys):
        assert main(["flops", "--n", "1024", "--h", "1024", "--f", "1024",
                     "--v", "2", "--ct", "16"]) == 0
        out = capsys.readouterr().out
        assert "3.66x" in out

    def test_tune_and_simulate_with_store(self, capsys, tmp_path):
        store = str(tmp_path / "maps.json")
        args = ["--n", "512", "--h", "64", "--f", "128", "--v", "4", "--ct", "8"]
        assert main(["tune", "--platform", "upmem", *args, "--store", store]) == 0
        assert os.path.exists(store)
        assert main(["simulate", "--platform", "upmem", *args, "--store", store]) == 0
        out = capsys.readouterr().out
        assert "using stored mapping" in out
        assert "analytical-model error" in out

    def test_tune_store_hit_skips_search(self, capsys, tmp_path):
        """A second ``tune --store`` run must not re-run Algorithm 1."""
        from repro import obs

        store = str(tmp_path / "maps.json")
        args = ["--n", "512", "--h", "64", "--f", "128", "--v", "4", "--ct", "8"]
        assert main(["tune", *args, "--store", store]) == 0
        capsys.readouterr()

        counter = obs.get_registry().counter("tuner.candidates_evaluated")
        before = counter.value
        assert main(["tune", *args, "--store", store]) == 0
        out = capsys.readouterr().out
        assert counter.value == before
        assert "search skipped" in out

    def test_tune_jobs_matches_serial(self, capsys, tmp_path):
        args = ["--n", "256", "--h", "32", "--f", "64", "--v", "4", "--ct", "8"]
        assert main(["tune", *args]) == 0
        serial_out = capsys.readouterr().out
        assert main(["tune", *args, "--jobs", "2"]) == 0
        parallel_out = capsys.readouterr().out

        def mapping_rows(text):
            # Normalize column padding: the "mapping source" cell width
            # differs between the two runs and re-pads every row.
            return [
                " ".join(line.split())
                for line in text.splitlines()
                if line.strip() and "mapping source" not in line
                and not set(line.strip()) <= {"-", " "}
            ]

        assert mapping_rows(serial_out) == mapping_rows(parallel_out)
        assert "parallel search (jobs=2)" in parallel_out

    def test_tune_cache_warm_start(self, capsys, tmp_path):
        from repro import obs

        cache = str(tmp_path / "cache")
        args = ["--n", "512", "--h", "64", "--f", "128", "--v", "4", "--ct", "8"]
        assert main(["tune", *args, "--cache", cache]) == 0
        first = capsys.readouterr().out
        assert "search" in first
        assert os.listdir(cache)

        counter = obs.get_registry().counter("tuner.candidates_evaluated")
        before = counter.value
        assert main(["tune", *args, "--cache", cache]) == 0
        out = capsys.readouterr().out
        assert counter.value == before
        assert "search skipped" in out

    def test_simulate_reads_cache(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        args = ["--n", "512", "--h", "64", "--f", "128", "--v", "4", "--ct", "8"]
        assert main(["tune", *args, "--cache", cache]) == 0
        capsys.readouterr()
        assert main(["simulate", *args, "--cache", cache]) == 0
        out = capsys.readouterr().out
        assert "using cached mapping" in out

    def test_compare_command(self, capsys):
        assert main(["compare", "--model", "bert-base"]) == 0
        out = capsys.readouterr().out
        assert "pim-dl" in out and "cpu-fp32" in out

    def test_compare_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            main(["compare", "--model", "gpt-17"])
