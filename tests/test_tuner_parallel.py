"""Parallel Auto-Tuner: determinism, sharding, fallback, model helpers.

The headline guarantee under test: ``AutoTuner(jobs=N)`` returns results
bit-identical to the serial scan for every N, because shard winners merge
by the same ``(cost, tiling index, mapping key)`` order the serial loop
implies.  A seeded property sweep runs in tier-1 on a handful of shapes;
the wider sweep is marked ``slow``.
"""

import random

import pytest

from repro import obs
from repro.core import LUTShape
from repro.mapping import (
    AutoTuner,
    enumerate_sub_lut_tilings,
    mapping_sort_key,
    model_lut_shapes,
    shard_tilings,
    tune_model_parallel,
)
from repro.mapping.tuner import _ShardResult
from repro.pim import get_platform
from repro.workloads import EVAL_MODELS


def random_shape(rng: random.Random) -> LUTShape:
    return LUTShape(
        n=rng.choice([64, 128, 256, 512]),
        h=rng.choice([16, 32, 64]),
        f=rng.choice([32, 64, 128]),
        v=4,
        ct=rng.choice([4, 8, 16]),
    )


def assert_results_identical(reference, other):
    assert other.mapping == reference.mapping
    assert other.cost == reference.cost  # bit-identical, not approx
    assert other.candidates_evaluated == reference.candidates_evaluated


class TestParallelMatchesSerial:
    def test_property_seeded_shapes(self):
        """jobs in {1, 2, 4} agree on random shape/platform pairs."""
        rng = random.Random(20240711)
        for _ in range(4):
            shape = random_shape(rng)
            platform = get_platform(rng.choice(["upmem", "hbm-pim", "aim"]))
            amortize = rng.random() < 0.5
            serial = AutoTuner(
                platform, amortize_lut_distribution=amortize
            ).tune(shape)
            for jobs in (2, 4):
                parallel = AutoTuner(
                    platform, amortize_lut_distribution=amortize, jobs=jobs
                ).tune(shape)
                assert_results_identical(serial, parallel)

    @pytest.mark.slow
    def test_property_seeded_shapes_wide(self):
        """The same property over a much larger seeded sample."""
        rng = random.Random(7)
        for _ in range(20):
            shape = random_shape(rng)
            platform = get_platform(rng.choice(["upmem", "hbm-pim", "aim"]))
            serial = AutoTuner(platform).tune(shape)
            for jobs in (2, 3, 4):
                parallel = AutoTuner(platform, jobs=jobs).tune(shape)
                assert_results_identical(serial, parallel)

    def test_parallel_counter_aggregation_matches_serial(self):
        shape = LUTShape(n=256, h=32, f=64, v=4, ct=8)
        platform = get_platform("upmem")
        counter = obs.get_registry().counter("tuner.candidates_evaluated")

        before = counter.value
        serial = AutoTuner(platform).tune(shape)
        serial_delta = counter.value - before

        before = counter.value
        AutoTuner(platform, jobs=2).tune(shape)
        parallel_delta = counter.value - before

        assert serial_delta == parallel_delta
        assert serial_delta == serial.candidates_evaluated

    def test_parallel_records_shard_spans(self):
        shape = LUTShape(n=128, h=16, f=32, v=4, ct=4)
        AutoTuner(get_platform("upmem"), jobs=2).tune(shape)
        names = [s.name for s in obs.get_tracer().finished_spans()]
        assert "tuner.tune_parallel" in names
        assert "tuner.shard" in names

    def test_parallel_progress_callback_reaches_totals(self):
        shape = LUTShape(n=256, h=32, f=64, v=4, ct=8)
        platform = get_platform("upmem")
        ticks = []
        AutoTuner(platform, jobs=2, progress_callback=ticks.append).tune(shape)
        assert ticks, "progress callback never fired"
        total = len(list(enumerate_sub_lut_tilings(shape, platform)))
        assert ticks[-1].evaluated == total
        assert ticks[-1].best_cost is not None


class TestSharding:
    def test_shards_partition_the_index_space(self):
        indexed = list(enumerate(range(103)))
        shards = shard_tilings(indexed, 4)
        seen = sorted(i for shard in shards for i, _ in shard)
        assert seen == list(range(103))
        assert len(shards) == 4

    def test_more_jobs_than_tilings_drops_empty_shards(self):
        indexed = list(enumerate(range(3)))
        shards = shard_tilings(indexed, 8)
        assert len(shards) == 3
        assert all(len(s) == 1 for s in shards)

    def test_zero_jobs_rejected(self):
        with pytest.raises(ValueError):
            shard_tilings([(0, (1, 1))], 0)

    def test_merge_prefers_lower_cost_then_lower_index(self):
        from repro.mapping import Mapping
        from repro.mapping.analytical import LatencyBreakdown

        bd = LatencyBreakdown(0, 0, 0, 0, 0, 0)
        m_a = Mapping(64, 32, 8, 8, 4)
        m_b = Mapping(64, 32, 16, 8, 4)
        cheap_late = _ShardResult(0, 1, 1, 0, (1.0, 9, m_a, bd), 0.0)
        cheap_early = _ShardResult(1, 1, 1, 0, (1.0, 2, m_b, bd), 0.0)
        costly = _ShardResult(2, 1, 1, 0, (5.0, 0, m_a, bd), 0.0)
        merged = AutoTuner._merge_shard_bests([cheap_late, cheap_early, costly])
        assert merged[1] == 2 and merged[2] == m_b
        assert AutoTuner._merge_shard_bests([]) is None

    def test_mapping_sort_key_is_total_order(self):
        from repro.mapping import Mapping

        a = Mapping(64, 32, 8, 8, 4)
        b = Mapping(64, 32, 8, 8, 4, load_scheme="coarse", cb_load_tile=2)
        assert mapping_sort_key(a) != mapping_sort_key(b)
        assert mapping_sort_key(a) == mapping_sort_key(Mapping(64, 32, 8, 8, 4))


class TestFallbackAndValidation:
    def test_pool_failure_falls_back_to_serial(self, monkeypatch):
        import repro.mapping.tuner as tuner_mod

        class BrokenPool:
            def __init__(self, *a, **k):
                raise OSError("no processes in this sandbox")

        monkeypatch.setattr(tuner_mod, "ProcessPoolExecutor", BrokenPool)
        shape = LUTShape(n=128, h=16, f=32, v=4, ct=4)
        platform = get_platform("upmem")
        serial = AutoTuner(platform).tune(shape)
        with pytest.warns(RuntimeWarning, match="falling back"):
            parallel = AutoTuner(platform, jobs=2).tune(shape)
        assert_results_identical(serial, parallel)

    def test_negative_jobs_rejected(self):
        with pytest.raises(ValueError):
            AutoTuner(get_platform("upmem"), jobs=-1)

    def test_jobs_zero_means_cpu_count(self):
        import os

        tuner = AutoTuner(get_platform("upmem"), jobs=0)
        assert tuner.jobs == (os.cpu_count() or 1)

    def test_parallel_impossible_shape_raises(self):
        from dataclasses import replace

        platform = get_platform("upmem")
        broken = replace(
            platform, local_memory=replace(platform.local_memory, buffer_bytes=1)
        )
        with pytest.raises(RuntimeError):
            AutoTuner(broken, jobs=2).tune(LUTShape(n=64, h=16, f=32, v=4, ct=4))


class TestModelHelpers:
    def test_model_lut_shapes_dedupes(self):
        config = EVAL_MODELS["bert-base"].with_(seq_len=32, batch_size=2)
        shapes = model_lut_shapes(config)
        assert len(shapes) == len(set(shapes)) == 4
        assert all(s.n == config.tokens for s in shapes)

    def test_model_lut_shapes_checks_divisibility(self):
        config = EVAL_MODELS["bert-base"].with_(seq_len=32, batch_size=2)
        with pytest.raises(ValueError):
            model_lut_shapes(config, v=7)

    def test_tune_model_parallel_matches_per_shape_serial(self):
        config = EVAL_MODELS["bert-base"].with_(seq_len=16, batch_size=2)
        platform = get_platform("upmem")
        results = tune_model_parallel(config, platform, jobs=2)
        assert len(results) == 4
        serial = AutoTuner(platform)
        for shape, result in results.items():
            assert_results_identical(serial.tune(shape), result)

    def test_tune_many_memoises_repeats(self):
        platform = get_platform("upmem")
        tuner = AutoTuner(platform)
        shape = LUTShape(n=128, h=16, f=32, v=4, ct=4)
        out = tuner.tune_many([shape, shape, shape])
        assert list(out) == [shape]
