"""Tests for the performance observatory: phase profiles, per-rank
timelines, bottleneck attribution, and their integration with the
simulator, engines, and scheduler.

The load-bearing invariant is the exact partition: the simulator's
``PhaseProfile.phase_seconds`` must sum to ``SimulationReport.total_s``
within 1e-9 for every load scheme, tuned or hand-written mapping, and
even under an injected straggler (ISSUE acceptance criterion).
"""

import pytest

from repro.core import LUTShape
from repro.mapping import AutoTuner, Mapping
from repro.obs.profiler import (
    PHASE_ORDER,
    BottleneckReport,
    PhaseProfile,
    attribute_bottleneck,
    build_rank_timelines,
    sorted_phases,
)
from repro.pim import PIMSimulator, get_platform
from repro.resilience.faults import FaultInjector, FaultPlan

SHAPE = LUTShape(n=64, h=16, f=32, v=4, ct=8)

MAPPINGS = {
    "static": Mapping(n_s_tile=16, f_s_tile=8, n_m_tile=4, f_m_tile=4,
                      cb_m_tile=2, load_scheme="static"),
    "coarse": Mapping(n_s_tile=16, f_s_tile=8, n_m_tile=4, f_m_tile=4,
                      cb_m_tile=2, load_scheme="coarse",
                      cb_load_tile=2, f_load_tile=4),
    "fine": Mapping(n_s_tile=16, f_s_tile=8, n_m_tile=4, f_m_tile=4,
                    cb_m_tile=2, load_scheme="fine", f_load_tile=2),
}


@pytest.fixture(scope="module")
def platform():
    return get_platform("upmem")


@pytest.fixture(scope="module")
def simulator(platform):
    return PIMSimulator(platform)


class TestExactPartition:
    @pytest.mark.parametrize("scheme", sorted(MAPPINGS))
    def test_phases_sum_to_total_every_scheme(self, simulator, scheme):
        report = simulator.run(SHAPE, MAPPINGS[scheme])
        assert report.profile is not None
        assert report.profile.total_s == pytest.approx(
            report.total_s, abs=1e-9
        )

    def test_phases_sum_to_total_tuned_large_shape(self, platform):
        shape = LUTShape(n=512, h=128, f=256, v=4, ct=16)
        mapping = AutoTuner(platform).tune(shape).mapping
        report = PIMSimulator(platform).run(shape, mapping)
        assert report.profile.total_s == pytest.approx(
            report.total_s, abs=1e-9
        )

    def test_partition_exact_under_straggler(self, simulator):
        injector = FaultInjector(FaultPlan(straggler_factor=2.5))
        report = simulator.run(SHAPE, MAPPINGS["coarse"], injector=injector)
        assert "straggler" in report.faults
        assert report.profile.total_s == pytest.approx(
            report.total_s, abs=1e-9
        )

    def test_kernel_phases_decompose_kernel_s(self, simulator):
        report = simulator.run(SHAPE, MAPPINGS["coarse"])
        phases = report.profile.phase_seconds
        kernel = sum(
            phases[p] for p in ("dma", "lookup", "reduce", "overhead")
        )
        assert kernel == pytest.approx(report.kernel_s, abs=1e-12)
        assert phases["distribution"] == pytest.approx(report.distribution_s)
        assert phases["gather"] == pytest.approx(report.gather_s)
        assert phases["launch"] == pytest.approx(report.launch_s)
        assert all(s >= 0 for s in phases.values())

    def test_dma_bytes_recorded(self, simulator):
        report = simulator.run(SHAPE, MAPPINGS["coarse"])
        assert report.event_counts["dma_bytes"] > 0


class TestPhaseProfile:
    def test_phase_shares_sum_to_one(self, simulator):
        profile = simulator.run(SHAPE, MAPPINGS["static"]).profile
        assert sum(profile.phase_shares().values()) == pytest.approx(1.0)

    def test_sorted_phases_canonical_order(self):
        scrambled = {"launch": 1.0, "unknown-z": 1.0, "distribution": 1.0,
                     "reduce": 1.0}
        names = [p for p, _ in sorted_phases(scrambled)]
        assert names == ["distribution", "reduce", "launch", "unknown-z"]
        assert set(PHASE_ORDER) >= {"distribution", "reduce", "launch"}

    def test_imbalance_zero_when_uniform(self):
        profile = PhaseProfile(
            phase_seconds={"reduce": 4.0},
            per_rank_busy_s=(1.0, 1.0, 1.0, 1.0),
            per_rank_active_pes=(8, 8, 8, 8),
            pes_per_rank=8,
        )
        assert profile.imbalance_index == pytest.approx(0.0)

    def test_imbalance_counts_idle_ranks(self):
        # One of four ranks does all the work: 1 - (1/4)/1 = 0.75.
        profile = PhaseProfile(
            phase_seconds={"reduce": 1.0},
            per_rank_busy_s=(1.0, 0.0, 0.0, 0.0),
            per_rank_active_pes=(8, 0, 0, 0),
            pes_per_rank=8,
        )
        assert profile.imbalance_index == pytest.approx(0.75)
        assert profile.top_ranks(2) == ((0, 1.0),)

    def test_combine_sums_phases_and_busy(self):
        a = PhaseProfile(phase_seconds={"reduce": 1.0, "dma": 0.5},
                         per_rank_busy_s=(1.0, 0.0),
                         per_rank_active_pes=(4, 0), pes_per_rank=4)
        b = PhaseProfile(phase_seconds={"reduce": 2.0, "ccs": 0.25},
                         per_rank_busy_s=(0.5, 0.5),
                         per_rank_active_pes=(4, 4), pes_per_rank=4)
        merged = PhaseProfile.combine([a, b], label="merged")
        assert merged.phase_seconds == {
            "reduce": 3.0, "dma": 0.5, "ccs": 0.25,
        }
        assert merged.per_rank_busy_s == (1.5, 0.5)
        assert merged.rank_segments == {}  # timelines do not compose
        assert merged.total_s == pytest.approx(3.75)

    def test_to_jsonable_round_trips_through_json(self, simulator):
        import json

        profile = simulator.run(SHAPE, MAPPINGS["coarse"]).profile
        payload = json.loads(json.dumps(profile.to_jsonable()))
        assert payload["total_s"] == pytest.approx(profile.total_s)
        assert payload["pes_per_rank"] == profile.pes_per_rank


class TestRankTimelines:
    def make_profile(self):
        return PhaseProfile(phase_seconds={
            "distribution": 4.0, "dma": 1.0, "lookup": 0.5, "reduce": 2.0,
            "overhead": 0.5, "gather": 2.0, "launch": 1.0,
        })

    def test_busy_and_segments_cover_used_ranks_only(self):
        profile = self.make_profile()
        build_rank_timelines(
            profile, num_ranks=4, pes_per_rank=8, active_pes=16
        )
        assert profile.ranks == 4
        assert profile.per_rank_active_pes == (8, 8, 0, 0)
        assert set(profile.rank_segments) == {0, 1}
        assert profile.per_rank_busy_s[2] == 0.0

    def test_distribution_serializes_kernel_parallel(self):
        profile = self.make_profile()
        build_rank_timelines(
            profile, num_ranks=4, pes_per_rank=8, active_pes=16
        )
        segs0 = {s.phase: s for s in profile.rank_segments[0]}
        segs1 = {s.phase: s for s in profile.rank_segments[1]}
        # Rank 1 receives its tiles after rank 0 finished receiving.
        assert segs1["distribution"].start_s == pytest.approx(
            segs0["distribution"].end_s
        )
        # The kernel window is shared (synchronous launch).
        assert segs0["kernel"].start_s == segs1["kernel"].start_s == 4.0
        assert segs0["kernel"].duration_s == pytest.approx(4.0)  # dma+lk+rd+ov
        # Gather serializes after the kernel on the way out.
        assert segs0["gather"].start_s == pytest.approx(8.0)
        assert segs1["gather"].end_s == pytest.approx(10.0)

    def test_launch_lands_on_no_rank(self):
        profile = self.make_profile()
        build_rank_timelines(
            profile, num_ranks=2, pes_per_rank=8, active_pes=8
        )
        phases_seen = {
            s.phase for segs in profile.rank_segments.values() for s in segs
        }
        assert "launch" not in phases_seen

    def test_occupancy_timeline_bounded(self):
        profile = self.make_profile()
        build_rank_timelines(
            profile, num_ranks=4, pes_per_rank=8, active_pes=16
        )
        timeline = profile.occupancy_timeline(points=16)
        assert len(timeline) == 16
        assert all(0.0 <= frac <= 1.0 for _, frac in timeline)
        assert any(frac > 0 for _, frac in timeline)


class TestBottleneckReport:
    def test_dominant_phase_and_shares(self):
        report = BottleneckReport.from_phases(
            {"reduce": 3.0, "dma": 1.0}
        )
        assert report.dominant_phase == "reduce"
        assert report.dominant_share == pytest.approx(0.75)
        assert report.total_s == pytest.approx(4.0)

    def test_empty_phases(self):
        report = BottleneckReport.from_phases({})
        assert report.dominant_phase == "none"
        assert report.total_s == 0.0

    def test_render_mentions_dominant_and_ranks(self):
        report = BottleneckReport.from_phases(
            {"reduce": 3.0, "dma": 1.0},
            utilization={"reduce": 0.5},
            imbalance_index=0.25,
            top_ranks=((2, 0.003),),
        )
        text = report.render()
        assert "bottleneck: reduce" in text
        assert "rank 2" in text
        assert "util" in text

    def test_simulator_bottleneck_utilizations_bounded(
        self, simulator, platform
    ):
        report = simulator.run(SHAPE, MAPPINGS["coarse"])
        bn = report.bottleneck(platform=platform)
        assert bn.total_s == pytest.approx(report.total_s, abs=1e-9)
        assert {"reduce", "dma", "distribution", "gather"} <= set(
            bn.utilization
        )
        assert all(0.0 <= u <= 1.0 for u in bn.utilization.values())
        assert bn.top_ranks  # at least one loaded rank

    def test_bottleneck_without_profile_raises(self, simulator):
        report = simulator.run(SHAPE, MAPPINGS["coarse"])
        object.__setattr__(report, "profile", None)
        with pytest.raises(ValueError):
            report.bottleneck()

    def test_attribute_without_platform_skips_utilization(self, simulator):
        profile = simulator.run(SHAPE, MAPPINGS["coarse"]).profile
        bn = attribute_bottleneck(profile)
        assert bn.utilization == {}
        assert bn.total_s == pytest.approx(profile.total_s)


class TestEngineAttribution:
    @pytest.fixture(scope="class")
    def config(self):
        from repro.workloads import opt_style

        return opt_style(256, seq_len=64, batch_size=1)

    def test_engine_report_phases_cover_total(self, config):
        from repro.baselines import wimpy_host
        from repro.engine import PIMDLEngine

        platform = get_platform("upmem")
        report = PIMDLEngine(platform, wimpy_host()).run(config)
        assert report.phase_seconds
        # Phase seconds cover wall + overlap-hidden time.
        assert sum(report.phase_seconds.values()) == pytest.approx(
            report.total_s + report.overlap_hidden_s, rel=1e-9
        )
        bn = report.bottleneck()
        assert bn.dominant_phase in report.phase_seconds

    def test_engine_report_empty_phases_raises(self):
        from repro.engine.report import EngineReport

        with pytest.raises(ValueError):
            EngineReport(engine="x", model="y").bottleneck()

    def test_decode_engine_phases_sum_to_token_latency(self, config):
        from repro.baselines import wimpy_host
        from repro.engine.decode import LUTDecodeEngine

        platform = get_platform("upmem")
        report = LUTDecodeEngine(platform, wimpy_host()).run(
            config, batch_size=2
        )
        assert sum(report.phase_seconds.values()) == pytest.approx(
            report.token_latency_s, rel=1e-9
        )

    def test_scheduler_attribution_per_request_class(self, config):
        from repro.baselines import wimpy_host
        from repro.engine import (
            GenerationServer,
            RequestScheduler,
            SchedulerPolicy,
            poisson_requests,
        )

        server = GenerationServer(get_platform("upmem"), wimpy_host())
        sched = RequestScheduler(
            server, config, policy=SchedulerPolicy(max_batch_size=8)
        )
        requests = poisson_requests(
            8, 5.0, prompt_len=64, generate_len=8, seed=0
        )
        result = sched.run(requests)
        assert result.phase_seconds
        prefill = result.phase_attribution("prefill")
        decode = result.phase_attribution("decode")
        both = result.phase_attribution()
        assert prefill.total_s > 0 and decode.total_s > 0
        assert both.total_s == pytest.approx(
            prefill.total_s + decode.total_s, rel=1e-9
        )
        # Class-tagged keys collapse to plain phase names.
        assert all("/" not in p for p in both.phase_seconds)
