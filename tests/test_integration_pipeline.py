"""Integration tests: the full PIM-DL pipeline end to end.

These exercise the complete flow of paper Fig. 5 on scaled-down models:
train -> convert -> calibrate (eLUT-NN) -> quantize & freeze -> deploy, and
the hardware path: tune a real converted layer's workload and execute it
functionally on the PIM simulator.
"""

import numpy as np
import pytest

from repro.core import (
    ELUTNNCalibrator,
    closest_centroid_search,
    convert_to_lut_nn,
    evaluate_accuracy,
    freeze_all_luts,
    lut_layers,
    lut_lookup,
    set_lut_mode,
)
from repro.mapping import AutoTuner
from repro.nn import PatchClassifier, TextClassifier
from repro.pim import PIMSimulator, get_platform
from repro.workloads import (
    SyntheticPatchTask,
    SyntheticTextTask,
    sample_batches,
    train_classifier,
)


@pytest.fixture(scope="module")
def text_pipeline():
    """Train a small classifier and keep its pieces for several tests."""
    rng = np.random.default_rng(0)
    task = SyntheticTextTask(vocab_size=48, seq_len=12, num_classes=4,
                             peak_mass=0.7, seed=1)
    train = sample_batches(task, 384, 32)
    test = sample_batches(task, 192, 64)
    model = TextClassifier(vocab_size=48, max_seq_len=12, num_classes=4,
                           dim=32, num_layers=2, num_heads=4, rng=rng)
    train_classifier(model, train, epochs=6, lr=2e-3)
    return task, model, train, test


class TestTextPipeline:
    def test_full_conversion_and_calibration_recovers_accuracy(self, text_pipeline):
        task, model, train, test = text_pipeline
        original = evaluate_accuracy(model, test)
        assert original > 0.9, "substrate model failed to learn the task"

        calib = sample_batches(task, 96, 32)
        convert_to_lut_nn(model, [b[0] for b in calib], v=2, ct=8,
                          rng=np.random.default_rng(2))
        ELUTNNCalibrator(beta=10.0, lr=1e-3).calibrate(model, calib, epochs=4)
        set_lut_mode(model, "lut")
        freeze_all_luts(model, quantize_int8=True)
        deployed = evaluate_accuracy(model, test)
        assert deployed > original - 0.1

    def test_all_encoder_linears_replaced(self, text_pipeline):
        _, model, _, _ = text_pipeline
        assert len(lut_layers(model)) == 2 * 4

    def test_int8_luts_deployed(self, text_pipeline):
        _, model, _, _ = text_pipeline
        for _, layer in lut_layers(model):
            assert layer.quantized_lut is not None
            assert layer.quantized_lut.values.dtype == np.int8


class TestVisionPipeline:
    def test_patch_classifier_pipeline(self):
        rng = np.random.default_rng(3)
        task = SyntheticPatchTask(num_patches=6, patch_dim=8, num_classes=3,
                                  noise=0.3, seed=2)
        train = sample_batches(task, 384, 32)
        test = sample_batches(task, 192, 64)
        model = PatchClassifier(num_patches=6, patch_dim=8, num_classes=3,
                                dim=32, num_layers=2, num_heads=4, rng=rng)
        train_classifier(model, train, epochs=12, lr=3e-3)
        original = evaluate_accuracy(model, test)
        assert original > 0.9

        calib = sample_batches(task, 96, 32)
        convert_to_lut_nn(model, [b[0] for b in calib], v=2, ct=8,
                          rng=np.random.default_rng(4))
        ELUTNNCalibrator(beta=10.0, lr=1e-3).calibrate(model, calib, epochs=4)
        set_lut_mode(model, "lut")
        freeze_all_luts(model, quantize_int8=True)
        assert evaluate_accuracy(model, test) > original - 0.1


class TestHardwarePathIntegration:
    def test_converted_layer_runs_on_simulator(self, text_pipeline):
        """A real calibrated layer's LUT kernel executes on the simulated
        DRAM-PIM and matches the layer's own functional output."""
        task, model, _, _ = text_pipeline
        name, layer = lut_layers(model)[0]
        shape = layer.lut_shape(n=64)
        platform = get_platform("upmem")
        tuned = AutoTuner(platform).tune(shape)

        rng = np.random.default_rng(5)
        x = rng.normal(size=(64, layer.in_features))
        codebooks = layer.current_codebooks()
        indices = closest_centroid_search(x, codebooks)
        report = PIMSimulator(platform).run(
            shape, tuned.mapping, indices=indices, lut=layer.lut
        )
        expected = lut_lookup(indices, layer.lut)
        np.testing.assert_allclose(report.output, expected, atol=1e-10)
        assert report.total_s > 0

    def test_tuned_mapping_beats_naive_on_simulator(self, text_pipeline):
        """The auto-tuner's choice must be at least as fast as a naive
        single-PE mapping when both are simulated."""
        from repro.mapping import Mapping, is_legal

        _, model, _, _ = text_pipeline
        _, layer = lut_layers(model)[0]
        shape = layer.lut_shape(n=256)
        platform = get_platform("upmem")
        sim = PIMSimulator(platform)
        tuned = AutoTuner(platform).tune(shape)
        t_tuned = sim.run(shape, tuned.mapping).total_s

        naive = Mapping(
            n_s_tile=shape.n, f_s_tile=shape.f,
            n_m_tile=min(8, shape.n), f_m_tile=min(8, shape.f), cb_m_tile=1,
            load_scheme="fine", f_load_tile=min(8, shape.f),
        )
        if is_legal(shape, naive, platform):
            t_naive = sim.run(shape, naive).total_s
            assert t_tuned <= t_naive * 1.05


class TestEndToEndConsistency:
    def test_quantized_model_close_to_float_model(self, text_pipeline):
        task, model, _, test = text_pipeline
        set_lut_mode(model, "lut")
        freeze_all_luts(model, quantize_int8=False)
        float_acc = evaluate_accuracy(model, test)
        freeze_all_luts(model, quantize_int8=True)
        int8_acc = evaluate_accuracy(model, test)
        # Paper reports <= 0.1% drop; allow a small-model tolerance.
        assert abs(float_acc - int8_acc) < 0.05
