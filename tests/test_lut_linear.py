"""Unit tests for the LUTLinear layer (modes, STE, centroid gradients)."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.core import Codebooks, LUTLinear, closest_centroid_search, hard_replace
from repro.nn import Linear


@pytest.fixture
def rng():
    return np.random.default_rng(0)


def make_layer(rng, h=8, f=5, v=2, ct=4):
    linear = Linear(h, f, rng=rng)
    acts = rng.normal(size=(50, h))
    return LUTLinear.from_linear(linear, acts, v=v, ct=ct, rng=rng), linear


class TestConstruction:
    def test_from_linear_kmeans(self, rng):
        layer, linear = make_layer(rng)
        assert layer.in_features == 8 and layer.out_features == 5
        assert layer.cb == 4 and layer.ct == 4
        assert layer.weight is linear.weight

    def test_from_linear_random_init(self, rng):
        linear = Linear(8, 5, rng=rng)
        acts = rng.normal(size=(50, 8))
        layer = LUTLinear.from_linear(linear, acts, v=2, ct=4, rng=rng,
                                      centroid_init="random")
        assert layer.centroids.shape == (4, 4, 2)

    def test_rejects_unknown_init(self, rng):
        linear = Linear(8, 5, rng=rng)
        with pytest.raises(ValueError):
            LUTLinear.from_linear(linear, rng.normal(size=(50, 8)), v=2, ct=4,
                                  centroid_init="magic")

    def test_rejects_mismatched_codebooks(self, rng):
        linear = Linear(8, 5, rng=rng)
        with pytest.raises(ValueError):
            LUTLinear(linear.weight, linear.bias, Codebooks(np.zeros((3, 4, 2))))

    def test_centroids_are_trainable_parameter(self, rng):
        layer, _ = make_layer(rng)
        names = {n for n, _ in layer.named_parameters()}
        assert "centroids" in names


class TestModes:
    def test_exact_mode_matches_linear(self, rng):
        layer, linear = make_layer(rng)
        layer.set_mode("exact")
        x = rng.normal(size=(6, 8))
        np.testing.assert_allclose(layer(Tensor(x)).data, linear(Tensor(x)).data)

    def test_calibrate_equals_lut_before_quantization(self, rng):
        layer, _ = make_layer(rng)
        x = Tensor(rng.normal(size=(6, 8)))
        layer.set_mode("calibrate")
        calibrated = layer(x).data
        layer.set_mode("lut")
        layer.freeze_lut()
        np.testing.assert_allclose(layer(x).data, calibrated, atol=1e-10)

    def test_lut_mode_matches_hard_replace_matmul(self, rng):
        layer, _ = make_layer(rng)
        layer.set_mode("lut")
        layer.freeze_lut()
        x = rng.normal(size=(6, 8))
        expected = hard_replace(x, layer.current_codebooks()) @ layer.weight.data
        expected = expected + layer.bias.data
        np.testing.assert_allclose(layer(Tensor(x)).data, expected, atol=1e-10)

    def test_lut_mode_auto_freezes(self, rng):
        layer, _ = make_layer(rng)
        layer.set_mode("lut")
        assert layer.lut is None
        layer(Tensor(rng.normal(size=(2, 8))))
        assert layer.lut is not None

    def test_int8_quantization_small_error(self, rng):
        layer, _ = make_layer(rng)
        x = Tensor(rng.normal(size=(20, 8)))
        layer.set_mode("lut")
        layer.freeze_lut(quantize_int8=False)
        exact = layer(x).data
        layer.freeze_lut(quantize_int8=True)
        quant = layer(x).data
        assert layer.quantized_lut is not None
        rel = np.linalg.norm(quant - exact) / np.linalg.norm(exact)
        assert rel < 0.05

    def test_unknown_mode_rejected(self, rng):
        layer, _ = make_layer(rng)
        with pytest.raises(ValueError):
            layer.set_mode("banana")

    def test_3d_input_round_trip(self, rng):
        layer, _ = make_layer(rng)
        layer.set_mode("calibrate")
        out = layer(Tensor(rng.normal(size=(2, 3, 8))))
        assert out.shape == (2, 3, 5)

    def test_repr(self, rng):
        layer, _ = make_layer(rng)
        assert "LUTLinear" in repr(layer)


class TestCalibrateGradients:
    def test_ste_passes_gradient_to_input(self, rng):
        layer, _ = make_layer(rng)
        layer.set_mode("calibrate")
        x = Tensor(rng.normal(size=(4, 8)), requires_grad=True)
        layer(x).sum().backward()
        assert x.grad is not None
        # STE: input gradient equals W @ upstream — same as the exact layer.
        np.testing.assert_allclose(
            x.grad, np.ones((4, 5)) @ layer.weight.data.T, atol=1e-10
        )

    def test_selected_centroids_receive_gradient(self, rng):
        layer, _ = make_layer(rng)
        layer.set_mode("calibrate")
        x = rng.normal(size=(4, 8))
        idx = closest_centroid_search(x, layer.current_codebooks())
        layer(Tensor(x)).sum().backward()
        grad = layer.centroids.grad
        assert grad is not None
        for c in range(layer.cb):
            used = set(idx[:, c])
            for k in range(layer.ct):
                norm = np.linalg.norm(grad[c, k])
                if k in used:
                    assert norm > 0
                else:
                    assert norm == 0

    def test_reconstruction_loss_recorded(self, rng):
        layer, _ = make_layer(rng)
        layer.set_mode("calibrate")
        assert layer.last_reconstruction_loss is None
        layer(Tensor(rng.normal(size=(4, 8))))
        assert layer.last_reconstruction_loss is not None
        assert layer.last_reconstruction_loss.item() >= 0

    def test_reconstruction_zero_for_centroid_inputs(self, rng):
        layer, _ = make_layer(rng)
        layer.set_mode("calibrate")
        cents = layer.current_codebooks()
        x = hard_replace(rng.normal(size=(4, 8)), cents)
        layer(Tensor(x))
        assert layer.last_reconstruction_loss.item() == pytest.approx(0.0, abs=1e-15)

    def test_weight_receives_gradient(self, rng):
        layer, _ = make_layer(rng)
        layer.set_mode("calibrate")
        layer(Tensor(rng.normal(size=(4, 8)))).sum().backward()
        assert layer.weight.grad is not None


class TestSoftMode:
    def test_low_temperature_approaches_hard(self, rng):
        layer, _ = make_layer(rng)
        x = Tensor(rng.normal(size=(6, 8)))
        layer.set_mode("calibrate")
        hard_out = layer(x).data
        layer.set_mode("soft")
        layer.temperature = 1e-4
        layer.gumbel_noise = False
        soft_out = layer(x).data
        np.testing.assert_allclose(soft_out, hard_out, atol=1e-6)

    def test_high_temperature_mixes_centroids(self, rng):
        layer, _ = make_layer(rng)
        x = Tensor(rng.normal(size=(6, 8)))
        layer.set_mode("soft")
        layer.temperature = 1e6
        layer.gumbel_noise = False
        mixed = layer(x).data
        # At infinite temperature every sub-vector maps to the centroid mean.
        mean_replaced = np.tile(
            layer.centroids.data.mean(axis=1).reshape(1, -1), (6, 1)
        )
        expected = mean_replaced @ layer.weight.data + layer.bias.data
        np.testing.assert_allclose(mixed, expected, atol=1e-6)

    def test_gumbel_noise_changes_assignments(self, rng):
        layer, _ = make_layer(rng)
        layer.set_mode("soft")
        layer.temperature = 0.5
        layer.gumbel_noise = True
        layer.training = True
        layer.gumbel_rng = np.random.default_rng(1)
        x = Tensor(rng.normal(size=(6, 8)))
        a = layer(x).data
        b = layer(x).data
        assert not np.allclose(a, b)

    def test_gumbel_disabled_in_eval(self, rng):
        layer, _ = make_layer(rng)
        layer.set_mode("soft")
        layer.gumbel_noise = True
        layer.eval()
        x = Tensor(rng.normal(size=(6, 8)))
        np.testing.assert_allclose(layer(x).data, layer(x).data)

    def test_soft_gradients_reach_all_centroids(self, rng):
        layer, _ = make_layer(rng)
        layer.set_mode("soft")
        layer.temperature = 5.0
        layer.gumbel_noise = False
        layer(Tensor(rng.normal(size=(6, 8)))).sum().backward()
        grad = layer.centroids.grad
        # Soft assignment gives every centroid a nonzero gradient.
        assert np.all(np.linalg.norm(grad, axis=-1) > 0)


class TestLUTModeGradients:
    def test_lut_mode_backprops_to_upstream(self, rng):
        layer, _ = make_layer(rng)
        layer.set_mode("lut")
        layer.freeze_lut()
        x = Tensor(rng.normal(size=(4, 8)), requires_grad=True)
        layer(x).sum().backward()
        assert x.grad is not None

    def test_lut_mode_no_tape_for_constants(self, rng):
        layer, _ = make_layer(rng)
        layer.set_mode("lut")
        layer.freeze_lut()
        out = layer(Tensor(rng.normal(size=(4, 8))))
        assert out.shape == (4, 5)
