"""Unit tests for the autograd tensor engine."""

import numpy as np
import pytest

from repro.autograd import Tensor, concatenate, ones, stack, tensor, where, zeros
from repro.autograd.tensor import unbroadcast


def numeric_grad(fn, x, eps=1e-6):
    """Central-difference gradient of scalar fn at x."""
    grad = np.zeros_like(x)
    for idx in np.ndindex(*x.shape):
        d = x.copy()
        d[idx] += eps
        up = fn(d)
        d[idx] -= 2 * eps
        down = fn(d)
        grad[idx] = (up - down) / (2 * eps)
    return grad


def check_grad(build, x0, atol=1e-6):
    """Compare autograd and numeric gradients of a scalar-valued graph."""
    t = Tensor(x0, requires_grad=True)
    build(t).backward()
    numeric = numeric_grad(lambda d: build(Tensor(d, requires_grad=True)).item(), x0)
    np.testing.assert_allclose(t.grad, numeric, atol=atol)


class TestConstruction:
    def test_wraps_numpy(self):
        t = Tensor(np.arange(6).reshape(2, 3))
        assert t.shape == (2, 3)
        assert t.ndim == 2
        assert t.size == 6

    def test_wraps_tensor(self):
        inner = Tensor([1.0, 2.0])
        assert Tensor(inner).shape == (2,)

    def test_scalar_item(self):
        assert Tensor(3.5).item() == 3.5

    def test_repr_mentions_grad(self):
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))
        assert "requires_grad" not in repr(Tensor([1.0]))

    def test_factories(self):
        assert zeros((2, 3)).data.sum() == 0
        assert ones((2, 3)).data.sum() == 6
        assert tensor([1, 2], requires_grad=True).requires_grad

    def test_detach_cuts_tape(self):
        t = Tensor([1.0], requires_grad=True)
        d = t.detach()
        assert not d.requires_grad
        assert d.data is t.data  # shares storage

    def test_len(self):
        assert len(Tensor(np.zeros((4, 2)))) == 4


class TestArithmeticForward:
    def test_add_sub_mul_div(self):
        a, b = Tensor([2.0, 4.0]), Tensor([1.0, 2.0])
        np.testing.assert_allclose((a + b).data, [3, 6])
        np.testing.assert_allclose((a - b).data, [1, 2])
        np.testing.assert_allclose((a * b).data, [2, 8])
        np.testing.assert_allclose((a / b).data, [2, 2])

    def test_scalar_mixing(self):
        a = Tensor([2.0])
        np.testing.assert_allclose((1 + a).data, [3])
        np.testing.assert_allclose((3 - a).data, [1])
        np.testing.assert_allclose((2 * a).data, [4])
        np.testing.assert_allclose((4 / a).data, [2])

    def test_neg_pow(self):
        a = Tensor([2.0, 3.0])
        np.testing.assert_allclose((-a).data, [-2, -3])
        np.testing.assert_allclose((a**2).data, [4, 9])

    def test_matmul(self):
        a = Tensor(np.arange(6.0).reshape(2, 3))
        b = Tensor(np.arange(12.0).reshape(3, 4))
        np.testing.assert_allclose((a @ b).data, a.data @ b.data)

    def test_batched_matmul(self):
        a = Tensor(np.random.default_rng(0).normal(size=(5, 2, 3)))
        b = Tensor(np.random.default_rng(1).normal(size=(5, 3, 4)))
        np.testing.assert_allclose((a @ b).data, a.data @ b.data)


class TestGradients:
    def test_add_broadcast_grad(self):
        rng = np.random.default_rng(0)
        x0 = rng.normal(size=(3, 4))
        check_grad(lambda t: (t + Tensor(np.ones((4,)))).sum(), x0)

    def test_mul_grad(self):
        rng = np.random.default_rng(1)
        check_grad(lambda t: (t * t).sum(), rng.normal(size=(2, 3)))

    def test_div_grad(self):
        rng = np.random.default_rng(2)
        x0 = rng.normal(size=(3,)) + 3.0
        check_grad(lambda t: (1.0 / t).sum(), x0)

    def test_matmul_grad(self):
        rng = np.random.default_rng(3)
        w = rng.normal(size=(4, 2))
        check_grad(lambda t: (t @ Tensor(w)).sum(), rng.normal(size=(3, 4)))

    def test_pow_grad(self):
        rng = np.random.default_rng(4)
        check_grad(lambda t: (t**3).sum(), rng.normal(size=(3,)))

    def test_exp_log_sqrt_tanh_relu(self):
        rng = np.random.default_rng(5)
        pos = np.abs(rng.normal(size=(4,))) + 0.5
        check_grad(lambda t: t.exp().sum(), rng.normal(size=(4,)))
        check_grad(lambda t: t.log().sum(), pos)
        check_grad(lambda t: t.sqrt().sum(), pos)
        check_grad(lambda t: t.tanh().sum(), rng.normal(size=(4,)))
        check_grad(lambda t: t.relu().sum(), rng.normal(size=(4,)) + 0.3)

    def test_mean_var_grads(self):
        rng = np.random.default_rng(6)
        check_grad(lambda t: t.mean(), rng.normal(size=(3, 4)))
        check_grad(lambda t: t.var(), rng.normal(size=(3, 4)), atol=1e-5)

    def test_max_grad_single(self):
        x0 = np.array([1.0, 5.0, 3.0])
        t = Tensor(x0, requires_grad=True)
        t.max().backward()
        np.testing.assert_allclose(t.grad, [0, 1, 0])

    def test_max_grad_ties_split(self):
        t = Tensor(np.array([2.0, 2.0]), requires_grad=True)
        t.max().backward()
        np.testing.assert_allclose(t.grad, [0.5, 0.5])

    def test_getitem_grad_scatter(self):
        t = Tensor(np.arange(6.0), requires_grad=True)
        t[np.array([0, 0, 2])].sum().backward()
        np.testing.assert_allclose(t.grad, [2, 0, 1, 0, 0, 0])

    def test_reshape_transpose_grad(self):
        rng = np.random.default_rng(7)
        x0 = rng.normal(size=(2, 6))
        check_grad(lambda t: (t.reshape(3, 4).transpose() ** 2).sum(), x0)

    def test_swapaxes(self):
        t = Tensor(np.arange(24.0).reshape(2, 3, 4), requires_grad=True)
        s = t.swapaxes(0, 2)
        assert s.shape == (4, 3, 2)
        s.sum().backward()
        np.testing.assert_allclose(t.grad, np.ones((2, 3, 4)))


class TestGraphStructure:
    def test_diamond_graph_sums_gradients(self):
        """Residual-style reuse must add both gradient paths once each."""
        t = Tensor([2.0], requires_grad=True)
        a = t * 3.0
        b = t * 5.0
        (a + b).backward()
        np.testing.assert_allclose(t.grad, [8.0])

    def test_deep_residual_chain_linear_time(self):
        """30 stacked residual adds — fails (hangs) on exponential engines."""
        t = Tensor(np.ones(4), requires_grad=True)
        x = t
        for _ in range(30):
            x = x + x * 0.5
        x.sum().backward()
        np.testing.assert_allclose(t.grad, np.full(4, 1.5**30))

    def test_grad_accumulates_across_backwards(self):
        t = Tensor([1.0], requires_grad=True)
        (t * 2).backward()
        (t * 3).backward()
        np.testing.assert_allclose(t.grad, [5.0])

    def test_zero_grad(self):
        t = Tensor([1.0], requires_grad=True)
        (t * 2).backward()
        t.zero_grad()
        assert t.grad is None

    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_backward_requires_scalar(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            t.backward()

    def test_backward_with_explicit_grad(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        (t * 2).backward(np.array([1.0, 10.0]))
        np.testing.assert_allclose(t.grad, [2.0, 20.0])

    def test_no_grad_leaves_untouched(self):
        a = Tensor([1.0], requires_grad=True)
        b = Tensor([2.0])  # constant
        (a * b).backward()
        assert b.grad is None


class TestCombinators:
    def test_concatenate_forward_backward(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(2 * np.ones((3, 2)), requires_grad=True)
        c = concatenate([a, b], axis=0)
        assert c.shape == (5, 2)
        (c * c).sum().backward()
        np.testing.assert_allclose(a.grad, 2 * np.ones((2, 2)))
        np.testing.assert_allclose(b.grad, 4 * np.ones((3, 2)))

    def test_stack(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.zeros(3), requires_grad=True)
        s = stack([a, b], axis=0)
        assert s.shape == (2, 3)
        s.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(3))
        np.testing.assert_allclose(b.grad, np.ones(3))

    def test_where_routes_gradients(self):
        cond = np.array([True, False, True])
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.zeros(3), requires_grad=True)
        where(cond, a, b).sum().backward()
        np.testing.assert_allclose(a.grad, [1, 0, 1])
        np.testing.assert_allclose(b.grad, [0, 1, 0])


class TestUnbroadcast:
    def test_identity_when_same_shape(self):
        g = np.ones((2, 3))
        assert unbroadcast(g, (2, 3)) is g

    def test_sums_leading_axes(self):
        g = np.ones((4, 2, 3))
        np.testing.assert_allclose(unbroadcast(g, (2, 3)), 4 * np.ones((2, 3)))

    def test_sums_size_one_axes(self):
        g = np.ones((2, 3))
        np.testing.assert_allclose(unbroadcast(g, (2, 1)), 3 * np.ones((2, 1)))

    def test_scalar_target(self):
        g = np.ones((2, 3))
        np.testing.assert_allclose(unbroadcast(g, ()), 6.0)


class TestExtendedOps:
    def test_abs_forward_backward(self):
        t = Tensor(np.array([-2.0, 0.5, -1.0]), requires_grad=True)
        t.abs().sum().backward()
        np.testing.assert_allclose(t.grad, [-1, 1, -1])

    def test_clip_forward(self):
        t = Tensor(np.array([-5.0, 0.5, 5.0]))
        np.testing.assert_allclose(t.clip(-1, 1).data, [-1, 0.5, 1])

    def test_clip_gradient_masked(self):
        t = Tensor(np.array([-5.0, 0.5, 5.0]), requires_grad=True)
        t.clip(-1, 1).sum().backward()
        np.testing.assert_allclose(t.grad, [0, 1, 0])

    def test_clip_validates_bounds(self):
        with pytest.raises(ValueError):
            Tensor([1.0]).clip(2.0, 1.0)

    def test_min_reduction(self):
        t = Tensor(np.array([3.0, -1.0, 2.0]), requires_grad=True)
        m = t.min()
        assert m.item() == -1.0
        m.backward()
        np.testing.assert_allclose(t.grad, [0, 1, 0])

    def test_maximum_elementwise(self):
        from repro.autograd import maximum

        a = Tensor(np.array([1.0, 5.0]), requires_grad=True)
        b = Tensor(np.array([2.0, 3.0]), requires_grad=True)
        out = maximum(a, b)
        np.testing.assert_allclose(out.data, [2, 5])
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [0, 1])
        np.testing.assert_allclose(b.grad, [1, 0])

    def test_maximum_ties_split(self):
        from repro.autograd import maximum

        a = Tensor(np.array([2.0]), requires_grad=True)
        b = Tensor(np.array([2.0]), requires_grad=True)
        maximum(a, b).sum().backward()
        np.testing.assert_allclose(a.grad, [0.5])
        np.testing.assert_allclose(b.grad, [0.5])

    def test_minimum_elementwise(self):
        from repro.autograd import minimum

        a = Tensor(np.array([1.0, 5.0]), requires_grad=True)
        b = Tensor(np.array([2.0, 3.0]))
        out = minimum(a, b)
        np.testing.assert_allclose(out.data, [1, 3])
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [1, 0])
