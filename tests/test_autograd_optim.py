"""Unit tests for the SGD/Adam optimizers."""

import numpy as np
import pytest

from repro.autograd import SGD, Adam, Tensor


def quadratic_loss(param, target):
    diff = param - Tensor(target)
    return (diff * diff).sum()


class TestSGD:
    def test_minimizes_quadratic(self):
        target = np.array([3.0, -2.0])
        p = Tensor(np.zeros(2), requires_grad=True)
        opt = SGD([p], lr=0.1)
        for _ in range(100):
            loss = quadratic_loss(p, target)
            opt.zero_grad()
            loss.backward()
            opt.step()
        np.testing.assert_allclose(p.data, target, atol=1e-4)

    def test_momentum_accelerates(self):
        target = np.array([1.0])

        def run(momentum):
            p = Tensor(np.zeros(1), requires_grad=True)
            opt = SGD([p], lr=0.01, momentum=momentum)
            for _ in range(30):
                loss = quadratic_loss(p, target)
                opt.zero_grad()
                loss.backward()
                opt.step()
            return abs(p.data[0] - 1.0)

        assert run(0.9) < run(0.0)

    def test_skips_params_without_grad(self):
        p = Tensor(np.zeros(2), requires_grad=True)
        opt = SGD([p], lr=0.1)
        opt.step()  # no grad accumulated; must not crash or move
        np.testing.assert_allclose(p.data, np.zeros(2))

    def test_rejects_bad_lr(self):
        p = Tensor(np.zeros(1), requires_grad=True)
        with pytest.raises(ValueError):
            SGD([p], lr=0.0)

    def test_rejects_empty_params(self):
        with pytest.raises(ValueError):
            SGD([Tensor(np.zeros(1))], lr=0.1)  # not trainable


class TestAdam:
    def test_minimizes_quadratic(self):
        target = np.array([5.0, -1.0, 0.5])
        p = Tensor(np.zeros(3), requires_grad=True)
        opt = Adam([p], lr=0.1)
        for _ in range(300):
            loss = quadratic_loss(p, target)
            opt.zero_grad()
            loss.backward()
            opt.step()
        np.testing.assert_allclose(p.data, target, atol=1e-3)

    def test_weight_decay_shrinks_solution(self):
        target = np.array([5.0])

        def run(wd):
            p = Tensor(np.zeros(1), requires_grad=True)
            opt = Adam([p], lr=0.1, weight_decay=wd)
            for _ in range(300):
                loss = quadratic_loss(p, target)
                opt.zero_grad()
                loss.backward()
                opt.step()
            return p.data[0]

        assert run(1.0) < run(0.0)

    def test_zero_grad_clears(self):
        p = Tensor(np.zeros(2), requires_grad=True)
        opt = Adam([p], lr=0.1)
        quadratic_loss(p, np.ones(2)).backward()
        assert p.grad is not None
        opt.zero_grad()
        assert p.grad is None

    def test_bias_correction_first_step(self):
        # First Adam step should move by ~lr regardless of gradient scale.
        p = Tensor(np.zeros(1), requires_grad=True)
        opt = Adam([p], lr=0.1)
        (p * 1000.0).sum().backward()
        opt.step()
        assert p.data[0] == pytest.approx(-0.1, rel=1e-6)
