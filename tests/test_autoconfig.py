"""Unit tests for per-layer (V, CT) co-optimization."""

import numpy as np
import pytest

from repro.baselines import wimpy_host
from repro.core import (
    convert_with_plan,
    lut_layers,
    measure_candidates,
    plan_layer_configs,
    uniform_plan,
)
from repro.nn import TextClassifier
from repro.pim import get_platform
from repro.workloads import SyntheticTextTask, sample_batches, train_classifier


@pytest.fixture(scope="module")
def setup():
    task = SyntheticTextTask(vocab_size=48, seq_len=12, num_classes=4,
                             peak_mass=0.7, seed=1)
    model = TextClassifier(vocab_size=48, max_seq_len=12, num_classes=4,
                           dim=32, num_layers=2, num_heads=4,
                           rng=np.random.default_rng(3))
    train = sample_batches(task, 256, 32)
    train_classifier(model, train, epochs=4, lr=2e-3)
    calib = [b[0] for b in sample_batches(task, 96, 32)]
    frontier = measure_candidates(
        model,
        calib,
        platform=get_platform("upmem"),
        host=wimpy_host(),
        serving_rows=2048,
        candidates=((2, 8), (4, 8), (4, 4), (8, 4)),
        rng=np.random.default_rng(5),
    )
    return task, model, calib, frontier


class TestMeasureCandidates:
    def test_frontier_covers_all_layers(self, setup):
        _, model, _, frontier = setup
        from repro.core import find_target_linears

        assert set(frontier) == {n for n, _ in find_target_linears(model)}

    def test_points_sorted_by_latency(self, setup):
        _, _, _, frontier = setup
        for points in frontier.values():
            latencies = [p.latency_s for p in points]
            assert latencies == sorted(latencies)

    def test_finer_quantization_has_lower_error(self, setup):
        _, _, _, frontier = setup
        for points in frontier.values():
            by_cfg = {(p.v, p.ct): p.error for p in points}
            # V=2/CT=8 approximates strictly better than V=8/CT=4.
            assert by_cfg[(2, 8)] < by_cfg[(8, 4)]

    def test_all_errors_and_latencies_positive(self, setup):
        _, _, _, frontier = setup
        for points in frontier.values():
            for p in points:
                assert p.error >= 0 and p.latency_s > 0


class TestPlanning:
    def test_plan_respects_budget(self, setup):
        _, _, _, frontier = setup
        loose = sum(max(p.latency_s for p in pts) for pts in frontier.values())
        plan = plan_layer_configs(frontier, latency_budget_s=loose)
        assert plan.predicted_latency_s <= loose
        assert set(plan.assignment) == set(frontier)

    def test_tighter_budget_accepts_more_error(self, setup):
        _, _, _, frontier = setup
        fastest = sum(min(p.latency_s for p in pts) for pts in frontier.values())
        slowest = sum(max(p.latency_s for p in pts) for pts in frontier.values())
        tight = plan_layer_configs(frontier, latency_budget_s=fastest * 1.01)
        loose = plan_layer_configs(frontier, latency_budget_s=slowest)
        assert tight.predicted_latency_s <= fastest * 1.01
        assert tight.predicted_error >= loose.predicted_error - 1e-12

    def test_infeasible_budget_raises(self, setup):
        _, _, _, frontier = setup
        fastest = sum(min(p.latency_s for p in pts) for pts in frontier.values())
        with pytest.raises(ValueError):
            plan_layer_configs(frontier, latency_budget_s=fastest * 0.5)

    def test_rejects_nonpositive_budget(self, setup):
        _, _, _, frontier = setup
        with pytest.raises(ValueError):
            plan_layer_configs(frontier, latency_budget_s=0.0)

    def test_plan_beats_uniform_at_matched_latency(self, setup):
        """Co-optimized per-layer configs dominate a uniform assignment:
        at the uniform plan's latency, the planner finds error <= uniform's."""
        _, _, _, frontier = setup
        uniform = uniform_plan(frontier, v=4, ct=8)
        plan = plan_layer_configs(frontier, latency_budget_s=uniform.predicted_latency_s)
        assert plan.predicted_error <= uniform.predicted_error + 1e-12

    def test_uniform_plan_unknown_candidate(self, setup):
        _, _, _, frontier = setup
        with pytest.raises(KeyError):
            uniform_plan(frontier, v=16, ct=128)


class TestConvertWithPlan:
    def test_mixed_configs_applied(self, setup):
        task, _, calib, frontier = setup
        model = TextClassifier(vocab_size=48, max_seq_len=12, num_classes=4,
                               dim=32, num_layers=2, num_heads=4,
                               rng=np.random.default_rng(3))
        names = sorted(frontier)
        plan = {name: ((2, 8) if i % 2 else (4, 4)) for i, name in enumerate(names)}
        replaced = convert_with_plan(model, calib, plan,
                                     rng=np.random.default_rng(6))
        assert len(replaced) == len(plan)
        for name, layer in lut_layers(model):
            assert (layer.v, layer.ct) == plan[name]
        # Model still runs end to end.
        assert model(calib[0]).shape == (calib[0].shape[0], 4)

    def test_unknown_layer_in_plan_raises(self, setup):
        task, _, calib, _ = setup
        model = TextClassifier(vocab_size=48, max_seq_len=12, num_classes=4,
                               dim=32, num_layers=2, num_heads=4,
                               rng=np.random.default_rng(3))
        with pytest.raises(KeyError):
            convert_with_plan(model, calib, {"nope.layer": (2, 8)})
