"""Unit tests for the PIM-DL Auto-Tuner (paper Algorithm 1)."""

import numpy as np
import pytest

from repro.core import LUTShape
from repro.mapping import (
    AutoTuner,
    enumerate_micro_kernels,
    estimate_latency,
    is_legal,
)
from repro.pim import get_platform


@pytest.fixture(scope="module")
def platform():
    return get_platform("upmem")


@pytest.fixture(scope="module")
def shape():
    return LUTShape(n=1024, h=64, f=256, v=4, ct=16)


class TestAutoTuner:
    def test_returns_legal_mapping(self, platform, shape):
        result = AutoTuner(platform).tune(shape)
        assert is_legal(shape, result.mapping, platform)
        assert result.cost > 0
        assert result.candidates_evaluated > 0

    def test_matches_exhaustive_reference(self, platform):
        small = LUTShape(n=128, h=16, f=32, v=4, ct=4)
        tuner = AutoTuner(platform)
        fast = tuner.tune(small)
        slow = tuner.tune_exhaustive(small)
        assert fast.cost == pytest.approx(slow.cost, rel=1e-12)

    def test_result_is_cached(self, platform, shape):
        tuner = AutoTuner(platform)
        first = tuner.tune(shape)
        second = tuner.tune(shape)
        assert first is second

    def test_beats_random_legal_mappings(self, platform, shape):
        result = AutoTuner(platform).tune(shape)
        rng = np.random.default_rng(0)
        sampled = 0
        for n_s, f_s in [(128, 32), (256, 64), (1024, 256)]:
            for m in enumerate_micro_kernels(shape, n_s, f_s, platform, max_points=50):
                if rng.random() < 0.3:
                    lb = estimate_latency(shape, m, platform)
                    assert result.cost <= lb.total + 1e-12
                    sampled += 1
        assert sampled > 10

    def test_amortized_tuner_cheaper(self, platform, shape):
        full = AutoTuner(platform).tune(shape)
        amortized = AutoTuner(platform, amortize_lut_distribution=True).tune(shape)
        assert amortized.cost < full.cost

    def test_bert_large_ffn1_tunes_quickly(self, platform):
        """The paper's Fig. 13 workload tunes in about a second (§5.3)."""
        import time

        shape = LUTShape(n=32768, h=1024, f=4096, v=4, ct=16)
        start = time.time()
        result = AutoTuner(platform).tune(shape)
        elapsed = time.time() - start
        assert elapsed < 10.0
        assert is_legal(shape, result.mapping, platform)

    def test_different_platforms_yield_different_mappings(self, shape):
        up = AutoTuner(get_platform("upmem")).tune(shape)
        hbm = AutoTuner(get_platform("hbm-pim")).tune(shape)
        # Cost scales must differ wildly (HBM-PIM is orders faster).
        assert hbm.cost < up.cost

    def test_impossible_shape_raises(self):
        from dataclasses import replace

        platform = get_platform("upmem")
        broken = replace(
            platform, local_memory=replace(platform.local_memory, buffer_bytes=1)
        )
        with pytest.raises(RuntimeError):
            AutoTuner(broken).tune(LUTShape(n=64, h=16, f=32, v=4, ct=4))
