"""Tests for the fast host kernel layer (:mod:`repro.kernels`).

Covers the kernel layer's three contracts:

* **Parity** — the cached/blocked/dtype-aware kernels reproduce the frozen
  pre-kernel references (:mod:`repro.kernels.reference`): bit-identical
  argmin indices in float64, allclose outputs, identical error behaviour.
* **Caching** — prepared centroid constants are reused across calls and
  invalidated by the version counter, by the content fingerprint (silent
  in-place mutation), and by ``LUTLinear.mark_centroids_updated`` during
  calibration.
* **Wiring** — LUTLinear's lut/soft/int8 paths, the engines'
  ``host_kernel_profile`` substitution, and the ``repro kernels`` CLI.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.core import (
    Codebooks,
    LUTLinear,
    closest_centroid_search,
    hard_replace,
    kmeans,
    lut_lookup,
    quantize_lut,
)
from repro.kernels import (
    CCSKernel,
    DEFAULT_BLOCK_ROWS,
    HostKernelProfile,
    gather_offsets,
    lloyd_update,
    lut_gather_reduce,
    lut_gather_reduce_quantized,
    measure_host_kernels,
    resolve_dtype,
)
from repro.kernels.reference import (
    ccs_reference,
    lloyd_update_reference,
    lut_lookup_reference,
    squared_distances_reference,
)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


def random_problem(rng, n=32, cb=6, ct=8, v=4):
    x = rng.normal(size=(n, cb * v))
    centroids = rng.normal(size=(cb, ct, v))
    return x, centroids


# ---------------------------------------------------------------------------
# CCS kernel: parity with the frozen reference
# ---------------------------------------------------------------------------
class TestCCSParity:
    def test_float64_indices_bit_identical(self, rng):
        x, cents = random_problem(rng)
        kernel = CCSKernel(dtype="float64")
        np.testing.assert_array_equal(
            kernel.search(x, cents), ccs_reference(x, cents)
        )

    def test_float32_indices_match_on_continuous_data(self, rng):
        # Random continuous data has no exact ties; float32 may flip only
        # near-tied argmins (accuracy contract), which are measure-zero here.
        x, cents = random_problem(rng, n=200)
        kernel = CCSKernel(dtype="float32")
        match = np.mean(kernel.search(x, cents) == ccs_reference(x, cents))
        assert match > 0.999

    def test_squared_distances_allclose(self, rng):
        x, cents = random_problem(rng)
        kernel = CCSKernel(dtype="float64")
        np.testing.assert_allclose(
            kernel.squared_distances(x, cents),
            squared_distances_reference(x, cents),
            atol=1e-9,
        )

    def test_blocking_does_not_change_results(self, rng):
        x, cents = random_problem(rng, n=23)
        whole = CCSKernel(dtype="float64").search(x, cents)
        for block in (1, 3, 7, 23, 100):
            blocked = CCSKernel(dtype="float64", block_rows=block).search(x, cents)
            np.testing.assert_array_equal(blocked, whole)

    def test_functional_api_routes_through_kernel(self, rng):
        x, cents = random_problem(rng)
        np.testing.assert_array_equal(
            closest_centroid_search(x, Codebooks(cents)),
            ccs_reference(x, cents),
        )

    def test_rejects_bad_shapes(self, rng):
        kernel = CCSKernel()
        with pytest.raises(ValueError):
            kernel.search(np.zeros(8), np.zeros((2, 4, 4)))
        with pytest.raises(ValueError):
            kernel.search(np.zeros((2, 9)), np.zeros((2, 4, 4)))
        with pytest.raises(ValueError):
            kernel.prepare(np.zeros((2, 4)))

    @given(
        n=st.integers(1, 20),
        cb=st.integers(1, 5),
        ct=st.integers(1, 9),
        v=st.integers(1, 5),
        seed=st.integers(0, 2**31),
        block=st.integers(1, 8),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_float64_parity(self, n, cb, ct, v, seed, block):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(n, cb * v))
        cents = rng.normal(size=(cb, ct, v))
        kernel = CCSKernel(dtype="float64", block_rows=block)
        np.testing.assert_array_equal(
            kernel.search(x, cents), ccs_reference(x, cents)
        )


class TestDtypeContract:
    def test_resolve_auto_preserves_floats(self):
        assert resolve_dtype(None, np.zeros(2, np.float32)) == np.float32
        assert resolve_dtype("auto", np.zeros(2, np.float64)) == np.float64
        # Non-float inputs upcast to the reference float64.
        assert resolve_dtype(None, np.zeros(2, np.int32)) == np.float64
        assert resolve_dtype(None) == np.float64

    def test_only_float32_float64_compute(self):
        with pytest.raises(ValueError):
            resolve_dtype("int8")
        with pytest.raises(ValueError):
            CCSKernel(dtype="float16")

    def test_auto_kernel_computes_in_input_dtype(self, rng):
        x, cents = random_problem(rng)
        kernel = CCSKernel(dtype=None)
        kernel.search(x.astype(np.float32), cents)
        assert np.dtype(np.float32) in kernel._cache
        kernel.search(x, cents)
        assert np.dtype(np.float64) in kernel._cache

    def test_block_rows_must_be_positive(self):
        with pytest.raises(ValueError):
            CCSKernel(block_rows=0)


# ---------------------------------------------------------------------------
# CCS kernel: constant caching + invalidation
# ---------------------------------------------------------------------------
class TestCCSCache:
    def test_same_version_hits_cache(self, rng):
        x, cents = random_problem(rng)
        kernel = CCSKernel(dtype="float64")
        kernel.search(x, cents, version=0)
        kernel.search(x, cents, version=0)
        assert kernel.stats["prepares"] == 1
        assert kernel.stats["cache_hits"] == 1

    def test_version_bump_invalidates(self, rng):
        x, cents = random_problem(rng)
        kernel = CCSKernel(dtype="float64")
        kernel.search(x, cents, version=0)
        kernel.search(x, cents, version=1)
        assert kernel.stats["prepares"] == 2

    def test_no_version_never_caches(self, rng):
        x, cents = random_problem(rng)
        kernel = CCSKernel(dtype="float64")
        kernel.search(x, cents)
        kernel.search(x, cents)
        assert kernel.stats["prepares"] == 2

    def test_fingerprint_catches_silent_mutation(self, rng):
        """In-place centroid mutation without a version bump must still
        invalidate — the content fingerprint is the safety net."""
        x, cents = random_problem(rng)
        kernel = CCSKernel(dtype="float64")
        before = kernel.search(x, cents, version=7)
        cents *= -1.0  # silent in-place update, same version
        after = kernel.search(x, cents, version=7)
        assert kernel.stats["prepares"] == 2
        np.testing.assert_array_equal(after, ccs_reference(x, cents))
        assert not np.array_equal(before, after)

    def test_invalidate_clears(self, rng):
        x, cents = random_problem(rng)
        kernel = CCSKernel(dtype="float64")
        kernel.search(x, cents, version=0)
        kernel.invalidate()
        kernel.search(x, cents, version=0)
        assert kernel.stats["prepares"] == 2


# ---------------------------------------------------------------------------
# LUT gather-reduce kernels
# ---------------------------------------------------------------------------
class TestLutGatherReduce:
    def test_matches_reference(self, rng):
        lut = rng.normal(size=(6, 8, 10))
        idx = rng.integers(0, 8, size=(20, 6)).astype(np.int32)
        np.testing.assert_allclose(
            lut_gather_reduce(idx, lut), lut_lookup_reference(idx, lut), atol=1e-12
        )

    def test_blocked_equals_unblocked(self, rng):
        lut = rng.normal(size=(4, 5, 7))
        idx = rng.integers(0, 5, size=(23, 4)).astype(np.int32)
        whole = lut_gather_reduce(idx, lut)
        for block in (1, 3, 7, 23, 1000):
            np.testing.assert_allclose(
                lut_gather_reduce(idx, lut, block_rows=block), whole, atol=1e-12
            )

    def test_per_codebook_path_matches_flat(self, rng, monkeypatch):
        """Force the per-codebook accumulation strategy and check parity."""
        from repro.kernels import lut as lut_mod

        lut = rng.normal(size=(6, 8, 10))
        idx = rng.integers(0, 8, size=(40, 6)).astype(np.int32)
        flat = lut_gather_reduce(idx, lut)
        monkeypatch.setattr(lut_mod, "_GATHER_BUDGET_BYTES", 1)
        percb = lut_gather_reduce(idx, lut)
        np.testing.assert_allclose(percb, flat, atol=1e-12)

    def test_negative_index_raises(self, rng):
        lut = rng.normal(size=(3, 4, 5))
        idx = np.zeros((2, 3), dtype=np.int32)
        idx[1, 2] = -1
        with pytest.raises(IndexError):
            lut_gather_reduce(idx, lut)

    def test_out_of_range_in_any_codebook_raises(self, rng):
        # An index >= CT in a *non-final* codebook would silently wrap into
        # the next codebook's rows under pure flat indexing; the single-pass
        # check must catch it.
        lut = rng.normal(size=(3, 4, 5))
        idx = np.zeros((2, 3), dtype=np.int32)
        idx[0, 0] = 4
        with pytest.raises(IndexError):
            lut_gather_reduce(idx, lut)

    def test_validation_errors(self, rng):
        lut = rng.normal(size=(3, 4, 5))
        with pytest.raises(ValueError):
            lut_gather_reduce(np.zeros((2, 2), dtype=np.int32), lut)
        with pytest.raises(ValueError):
            lut_gather_reduce(np.zeros(3, dtype=np.int32), lut)
        with pytest.raises(TypeError):
            lut_gather_reduce(np.zeros((2, 3), dtype=np.float64), lut)

    def test_ct256_edge_with_wide_and_unsigned_indices(self, rng):
        """CT=256: int32 and uint8 indices cover the full range."""
        lut = rng.normal(size=(2, 256, 3))
        idx32 = rng.integers(0, 256, size=(10, 2)).astype(np.int32)
        np.testing.assert_allclose(
            lut_gather_reduce(idx32, lut), lut_lookup_reference(idx32, lut),
            atol=1e-12,
        )
        idx8 = idx32.astype(np.uint8)
        np.testing.assert_allclose(
            lut_gather_reduce(idx8, lut), lut_lookup_reference(idx32, lut),
            atol=1e-12,
        )

    def test_lut_lookup_delegates_to_kernel(self, rng):
        lut = rng.normal(size=(3, 4, 5))
        idx = rng.integers(0, 4, size=(6, 3)).astype(np.int32)
        np.testing.assert_allclose(
            lut_lookup(idx, lut), lut_lookup_reference(idx, lut), atol=1e-12
        )
        with pytest.raises(IndexError):
            lut_lookup(np.full((2, 3), 9), lut)

    def test_precomputed_offsets(self, rng):
        lut = rng.normal(size=(3, 4, 5))
        idx = rng.integers(0, 4, size=(6, 3)).astype(np.int32)
        offs = gather_offsets(3, 4)
        np.testing.assert_allclose(
            lut_gather_reduce(idx, lut, offsets=offs),
            lut_gather_reduce(idx, lut),
            atol=1e-12,
        )

    @given(
        n=st.integers(1, 16),
        cb=st.integers(1, 5),
        ct=st.integers(1, 9),
        f=st.integers(1, 6),
        seed=st.integers(0, 2**31),
        block=st.integers(1, 6),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_parity(self, n, cb, ct, f, seed, block):
        rng = np.random.default_rng(seed)
        lut = rng.normal(size=(cb, ct, f))
        idx = rng.integers(0, ct, size=(n, cb)).astype(np.int32)
        np.testing.assert_allclose(
            lut_gather_reduce(idx, lut, block_rows=block),
            lut_lookup_reference(idx, lut),
            atol=1e-10,
        )


class TestQuantizedGatherReduce:
    @pytest.mark.parametrize("shape", [(4, 8, 6), (2, 256, 5), (1, 3, 7)])
    @pytest.mark.parametrize("per_codebook", [True, False])
    def test_int8_parity_vs_dequantized_lookup(self, rng, shape, per_codebook):
        """Fused INT8 path == dequantize-then-lookup, incl. the CT=256 edge
        and the global-scale (exact int32 accumulate) configuration."""
        cb, ct, f = shape
        lut = rng.normal(size=shape) * 3.0
        qlut = quantize_lut(lut, per_codebook=per_codebook)
        idx = rng.integers(0, ct, size=(17, cb)).astype(np.int32)
        expected = lut_lookup_reference(idx, qlut.dequantize())
        np.testing.assert_allclose(
            lut_gather_reduce_quantized(idx, qlut), expected, atol=1e-9
        )

    def test_global_scale_is_single_valued(self, rng):
        lut = rng.normal(size=(3, 4, 5))
        qlut = quantize_lut(lut, per_codebook=False)
        assert np.all(qlut.scales == qlut.scales[0])
        assert qlut.scales.shape == (3,)

    def test_blocked_equals_unblocked(self, rng):
        lut = rng.normal(size=(3, 5, 4))
        qlut = quantize_lut(lut)
        idx = rng.integers(0, 5, size=(13, 3)).astype(np.int32)
        whole = lut_gather_reduce_quantized(idx, qlut)
        for block in (1, 4, 13, 99):
            np.testing.assert_allclose(
                lut_gather_reduce_quantized(idx, qlut, block_rows=block),
                whole,
                atol=1e-12,
            )

    def test_bounds_checked(self, rng):
        qlut = quantize_lut(rng.normal(size=(3, 4, 5)))
        with pytest.raises(IndexError):
            lut_gather_reduce_quantized(np.full((2, 3), -2), qlut)
        with pytest.raises(IndexError):
            lut_gather_reduce_quantized(np.full((2, 3), 4), qlut)


# ---------------------------------------------------------------------------
# Vectorized Lloyd update
# ---------------------------------------------------------------------------
class TestLloydUpdate:
    def test_matches_reference_without_empties(self, rng):
        points = rng.normal(size=(60, 3))
        cents = rng.normal(size=(5, 3))
        labels = np.tile(np.arange(5), 12)
        new, counts = lloyd_update(points, labels, 5, cents)
        np.testing.assert_allclose(
            new, lloyd_update_reference(points, labels, 5, cents), atol=1e-12
        )
        np.testing.assert_array_equal(counts, np.full(5, 12))

    def test_high_dim_add_at_path(self, rng):
        # d > 64 exercises the np.add.at fallback instead of bincounts.
        points = rng.normal(size=(30, 100))
        cents = rng.normal(size=(4, 100))
        labels = rng.integers(0, 4, size=30)
        new, _ = lloyd_update(points, labels, 4, cents)
        np.testing.assert_allclose(
            new, lloyd_update_reference(points, labels, 4, cents), atol=1e-12
        )

    def test_empty_clusters_reseed_distinct_farthest(self, rng):
        points = rng.normal(size=(20, 2))
        cents = rng.normal(size=(5, 2))
        labels = np.zeros(20, dtype=np.int64)  # clusters 1..4 empty
        new, counts = lloyd_update(points, labels, 5, cents)
        assert counts[0] == 20 and np.all(counts[1:] == 0)
        dists = np.sum((points - cents[0]) ** 2, axis=1)
        order = np.argsort(-dists)
        # Reseeds are the 4 *distinct* farthest points, farthest first —
        # unlike the reference, which parked every empty cluster on the
        # same single farthest point.
        np.testing.assert_allclose(new[1:], points[order[:4]], atol=1e-12)

    def test_kmeans_still_converges(self, rng):
        centers = rng.normal(size=(3, 2)) * 10
        points = np.concatenate(
            [c + 0.05 * rng.normal(size=(40, 2)) for c in centers]
        )
        cents, labels, inertia = kmeans(points, 3, rng=rng)
        assert inertia < 1.0
        assert len(np.unique(labels)) == 3


# ---------------------------------------------------------------------------
# LUTLinear wiring: fused paths + cache invalidation during calibration
# ---------------------------------------------------------------------------
def make_layer(rng, h=8, f=5, v=2, ct=4, **kwargs):
    from repro.autograd import Tensor

    weight = Tensor(rng.normal(size=(h, f)), requires_grad=True)
    bias = Tensor(rng.normal(size=(f,)), requires_grad=True)
    cents = Codebooks(rng.normal(size=(h // v, ct, v)))
    return LUTLinear(weight, bias, cents, **kwargs)


class TestLUTLinearKernelWiring:
    def test_int8_mode_uses_fused_quantized_kernel(self, rng):
        from repro.autograd import Tensor

        layer = make_layer(rng)
        layer.set_mode("lut")
        layer.freeze_lut(quantize_int8=True)
        counter = obs.get_registry().counter("kernels.lut.int8_gathers")
        before = counter.value
        x = rng.normal(size=(6, 8))
        out = layer(Tensor(x)).data
        assert counter.value == before + 1
        idx = closest_centroid_search(x, layer.current_codebooks())
        expected = lut_lookup_reference(idx, layer.quantized_lut.dequantize())
        np.testing.assert_allclose(out, expected + layer.bias.data, atol=1e-9)

    def test_mark_centroids_updated_invalidates_mid_calibration(self, rng):
        """Mutating centroids in place (as Adam does) + mark_centroids_updated
        must change the next forward's assignments."""
        from repro.autograd import Tensor

        layer = make_layer(rng)
        layer.set_mode("calibrate")
        x = rng.normal(size=(12, 8))
        layer(Tensor(x))
        idx_before = closest_centroid_search(x, layer.current_codebooks())
        prepares_before = layer._ccs_kernel.stats["prepares"]
        # Simulate an optimizer step: in-place update, then notification.
        layer.centroids.data[:] = rng.normal(size=layer.centroids.data.shape)
        layer.mark_centroids_updated()
        layer(Tensor(x))
        assert layer._ccs_kernel.stats["prepares"] == prepares_before + 1
        idx_after = closest_centroid_search(x, layer.current_codebooks())
        assert not np.array_equal(idx_before, idx_after)

    def test_calibrator_marks_updates(self, rng):
        """ELUTNNCalibrator must bump every layer's centroid version."""
        from repro.autograd import Tensor
        from repro.core import ELUTNNCalibrator
        from repro.nn.module import Module

        class Tiny(Module):
            def __init__(self, layer):
                super().__init__()
                self.layer = layer

            def forward(self, x):
                return self.layer(x)

        layer = make_layer(rng)
        model = Tiny(layer)
        batches = [(Tensor(rng.normal(size=(4, 8))), np.array([0, 1, 2, 3]))]
        ELUTNNCalibrator(lr=1e-3).calibrate(model, batches, epochs=2)
        assert layer._centroid_version == 2

    def test_repeated_lut_forwards_hit_cache(self, rng):
        from repro.autograd import Tensor

        layer = make_layer(rng)
        layer.set_mode("lut")
        layer.freeze_lut()
        x = Tensor(rng.normal(size=(4, 8)))
        layer(x)
        layer(x)
        assert layer._ccs_kernel.stats["cache_hits"] >= 1

    def test_kernel_dtype_float32_still_accurate(self, rng):
        from repro.autograd import Tensor

        f64 = make_layer(np.random.default_rng(3))
        f32 = make_layer(np.random.default_rng(3), kernel_dtype="float32")
        f64.set_mode("lut")
        f32.set_mode("lut")
        x = Tensor(rng.normal(size=(16, 8)))
        np.testing.assert_allclose(f32(x).data, f64(x).data, atol=1e-5)

    def test_soft_eval_fast_path_matches_autograd(self, rng):
        from repro.autograd import Tensor

        layer = make_layer(rng)
        layer.set_mode("soft")
        layer.temperature = 0.7
        layer.gumbel_noise = False
        x = rng.normal(size=(6, 8))
        layer.train()
        train_out = layer(Tensor(x)).data  # autograd path
        layer.eval()
        eval_out = layer(Tensor(x)).data  # numpy fast path
        np.testing.assert_allclose(eval_out, train_out, atol=1e-9)


# ---------------------------------------------------------------------------
# Host kernel profile + engine substitution
# ---------------------------------------------------------------------------
class TestHostKernelProfile:
    def test_times_scale_with_workload(self):
        profile = HostKernelProfile(
            dtype="float32",
            block_rows=DEFAULT_BLOCK_ROWS,
            ccs_ops_per_s=1e9,
            gather_elements_per_s=1e9,
            measured_shape=(128, 768, 768, 4, 16),
        )
        assert profile.ccs_time(128, 768, 16) == pytest.approx(
            3 * 128 * 768 * 16 / 1e9
        )
        assert profile.gather_time(128, 192, 768) == pytest.approx(
            128 * 192 * 768 / 1e9
        )

    def test_measure_returns_positive_throughput(self):
        profile = measure_host_kernels(n=8, h=32, f=16, v=4, ct=4, repeats=1)
        assert profile.ccs_ops_per_s > 0
        assert profile.gather_elements_per_s > 0
        assert profile.measured_shape == (8, 32, 16, 4, 4)

    def test_engines_use_profile_for_ccs(self):
        from repro.baselines import wimpy_host
        from repro.engine import PIMDLEngine
        from repro.engine.decode import LUTDecodeEngine
        from repro.pim import get_platform

        platform = get_platform("upmem")
        host = wimpy_host()
        profile = HostKernelProfile(
            dtype="float32",
            block_rows=DEFAULT_BLOCK_ROWS,
            ccs_ops_per_s=1e9,
            gather_elements_per_s=1e9,
            measured_shape=(8, 32, 16, 4, 4),
        )
        engine = PIMDLEngine(platform, host, ct=16, host_kernel_profile=profile)
        assert engine._ccs_time(64, 768) == pytest.approx(
            profile.ccs_time(64, 768, 16)
        )
        baseline = PIMDLEngine(platform, host, ct=16)
        assert engine._ccs_time(64, 768) != baseline._ccs_time(64, 768)
        decode = LUTDecodeEngine(platform, host, ct=16, host_kernel_profile=profile)
        assert decode._ccs_time(4, 768) == pytest.approx(
            profile.ccs_time(4, 768, 16)
        )

    def test_generation_server_forwards_profile(self):
        from repro.baselines import wimpy_host
        from repro.engine.serving import GenerationServer
        from repro.pim import get_platform

        profile = HostKernelProfile(
            dtype="float32",
            block_rows=DEFAULT_BLOCK_ROWS,
            ccs_ops_per_s=1e9,
            gather_elements_per_s=1e9,
            measured_shape=(8, 32, 16, 4, 4),
        )
        server = GenerationServer(
            get_platform("upmem"), wimpy_host(), host_kernel_profile=profile
        )
        assert server._prefill.host_kernel_profile is profile
        assert server._decode.host_kernel_profile is profile


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
class TestKernelsCLI:
    def test_kernels_smoke(self, capsys):
        from repro.cli import main

        assert main([
            "kernels", "--n", "16", "--h", "16", "--f", "8",
            "--v", "4", "--ct", "4", "--int8", "--repeats", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "ccs" in out and "lut lookup" in out

    def test_kernels_json(self, capsys):
        from repro.cli import main

        assert main([
            "kernels", "--n", "16", "--h", "16", "--f", "8",
            "--v", "4", "--ct", "4", "--repeats", "1", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ccs"]["index_match"] == 1.0
        assert payload["lut"]["relative_error"] < 1e-9

    def test_kernels_rejects_bad_shape(self, capsys):
        from repro.cli import main

        assert main([
            "kernels", "--n", "4", "--h", "10", "--f", "4",
            "--v", "4", "--ct", "4",
        ]) == 2


# ---------------------------------------------------------------------------
# End-to-end parity smoke (the default-tier guarantee)
# ---------------------------------------------------------------------------
def test_parity_smoke(rng):
    """Fast end-to-end check: new kernel pipeline == frozen references."""
    x, cents = random_problem(rng, n=24, cb=8, ct=16, v=4)
    lut = rng.normal(size=(8, 16, 12))
    ref_idx = ccs_reference(x, cents)
    new_idx = CCSKernel(dtype="float64").search(x, cents)
    np.testing.assert_array_equal(new_idx, ref_idx)
    np.testing.assert_allclose(
        lut_gather_reduce(new_idx, lut),
        lut_lookup_reference(ref_idx, lut),
        atol=1e-10,
    )
    codebooks = Codebooks(cents)
    np.testing.assert_allclose(
        hard_replace(x, codebooks),
        codebooks.centroids[np.arange(8)[None, :], ref_idx].reshape(24, 32),
        atol=1e-12,
    )
