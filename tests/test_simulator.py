"""Unit + property tests for the event-level PIM simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Codebooks, LUTShape, build_lut, lut_lookup
from repro.mapping import AutoTuner, Mapping
from repro.pim import PIMSimulator, get_platform


@pytest.fixture(scope="module")
def platform():
    return get_platform("upmem")


@pytest.fixture(scope="module")
def simulator(platform):
    return PIMSimulator(platform)


@pytest.fixture
def shape():
    return LUTShape(n=64, h=16, f=32, v=4, ct=8)


@pytest.fixture
def mapping():
    return Mapping(n_s_tile=16, f_s_tile=8, n_m_tile=4, f_m_tile=4, cb_m_tile=2,
                   load_scheme="coarse", cb_load_tile=2, f_load_tile=4)


def random_kernel_inputs(shape, seed=0):
    rng = np.random.default_rng(seed)
    indices = rng.integers(0, shape.ct, size=(shape.n, shape.cb)).astype(np.int32)
    lut = rng.normal(size=(shape.cb, shape.ct, shape.f))
    return indices, lut


class TestTiming:
    def test_report_composition(self, simulator, shape, mapping):
        rep = simulator.run(shape, mapping)
        assert rep.total_s == pytest.approx(
            rep.distribution_s + rep.kernel_s + rep.gather_s + rep.launch_s
        )
        assert rep.total_s > 0
        assert rep.num_pes == (shape.n // 16) * (shape.f // 8)

    def test_illegal_mapping_rejected(self, simulator, shape, platform):
        with pytest.raises(ValueError):
            simulator.run(shape, Mapping(10, 8, 2, 2, 2))

    def test_event_counts_match_reuse_model(self, simulator, shape, mapping):
        rep = simulator.run(shape, mapping)
        counts = rep.event_counts
        trips_n = mapping.n_s_tile // mapping.n_m_tile
        trips_f = mapping.f_s_tile // mapping.f_m_tile
        trips_cb = shape.cb // mapping.cb_m_tile
        assert counts["tiles"] == trips_n * trips_f * trips_cb
        # Default traversal (n, f, cb): index depends on (n, cb) with cb
        # innermost -> reloaded every tile.
        assert counts["index_loads"] == counts["tiles"]
        # Output resident across cb: stored once per (n, f) tile.
        assert counts["output_stores"] == trips_n * trips_f

    def test_explicit_walk_matches_aggregate(self, platform, shape, mapping):
        """The tile-by-tile walk and the closed-form aggregation agree."""
        import repro.pim.simulator as simmod

        sim = PIMSimulator(platform)
        explicit, counts_a = sim._micro_kernel_time(shape, mapping)
        original = simmod.MAX_EXPLICIT_TILES
        simmod.MAX_EXPLICIT_TILES = 0  # force aggregation
        try:
            aggregate, counts_b = sim._micro_kernel_time(shape, mapping)
        finally:
            simmod.MAX_EXPLICIT_TILES = original
        assert aggregate == pytest.approx(explicit, rel=1e-9)
        assert counts_a["index_loads"] == counts_b["index_loads"]
        assert counts_a["output_stores"] == counts_b["output_stores"]
        assert counts_a["lut_loads"] == counts_b["lut_loads"]

    def test_agreement_with_analytical_model_at_optimum(self, platform):
        """Paper Fig. 13: the model tracks measured latency within ~15%."""
        shape = LUTShape(n=4096, h=256, f=512, v=4, ct=16)
        result = AutoTuner(platform).tune(shape)
        rep = PIMSimulator(platform).run(shape, result.mapping)
        err = abs(rep.total_s - result.cost) / rep.total_s
        assert err < 0.15

    def test_more_pes_faster_kernel(self, simulator):
        shape = LUTShape(n=256, h=16, f=64, v=4, ct=8)
        few = Mapping(256, 64, 8, 8, 2, load_scheme="coarse", cb_load_tile=2, f_load_tile=4)
        many = Mapping(32, 8, 8, 8, 2, load_scheme="coarse", cb_load_tile=2, f_load_tile=4)
        t_few = simulator.run(shape, few)
        t_many = simulator.run(shape, many)
        assert t_many.kernel_s < t_few.kernel_s


class TestFunctional:
    def test_output_matches_reference(self, simulator, shape, mapping):
        indices, lut = random_kernel_inputs(shape)
        rep = simulator.run(shape, mapping, indices=indices, lut=lut)
        np.testing.assert_allclose(rep.output, lut_lookup(indices, lut), atol=1e-12)

    def test_output_with_real_codebooks(self, simulator, shape, mapping):
        rng = np.random.default_rng(1)
        cbs = Codebooks(rng.normal(size=(shape.cb, shape.ct, shape.v)))
        w = rng.normal(size=(shape.h, shape.f))
        lut = build_lut(cbs, w)
        from repro.core import closest_centroid_search

        x = rng.normal(size=(shape.n, shape.h))
        indices = closest_centroid_search(x, cbs)
        rep = simulator.run(shape, mapping, indices=indices, lut=lut)
        np.testing.assert_allclose(rep.output, lut_lookup(indices, lut), atol=1e-12)

    def test_shape_validation(self, simulator, shape, mapping):
        indices, lut = random_kernel_inputs(shape)
        with pytest.raises(ValueError):
            simulator.run(shape, mapping, indices=indices[:, :2], lut=lut)
        with pytest.raises(ValueError):
            simulator.run(shape, mapping, indices=indices, lut=lut[:, :2])

    def test_no_output_without_inputs(self, simulator, shape, mapping):
        assert simulator.run(shape, mapping).output is None


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n_groups=st.sampled_from([1, 2, 4]),
    pes_per_group=st.sampled_from([1, 2, 4]),
)
def test_distributed_execution_property(seed, n_groups, pes_per_group):
    """Any legal sub-LUT partition computes exactly the reference output."""
    shape = LUTShape(n=32, h=8, f=16, v=2, ct=4)
    mapping = Mapping(
        n_s_tile=shape.n // n_groups,
        f_s_tile=shape.f // pes_per_group,
        n_m_tile=4,
        f_m_tile=4,
        cb_m_tile=2,
        load_scheme="fine",
        f_load_tile=2,
    )
    platform = get_platform("upmem")
    sim = PIMSimulator(platform)
    indices, lut = random_kernel_inputs(shape, seed)
    rep = sim.run(shape, mapping, indices=indices, lut=lut)
    np.testing.assert_allclose(rep.output, lut_lookup(indices, lut), atol=1e-12)
