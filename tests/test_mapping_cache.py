"""Persistent mapping cache: round-trips, fault injection, concurrency."""

import json
import os
import threading
import warnings

import pytest

from repro import obs
from repro.core import LUTShape
from repro.mapping import (
    FORMAT_VERSION,
    AutoTuner,
    MappingCache,
    MappingStore,
    platform_fingerprint,
)
from repro.pim import get_platform


@pytest.fixture(scope="module")
def platform():
    return get_platform("upmem")


@pytest.fixture(scope="module")
def tuned(platform):
    shape = LUTShape(n=256, h=32, f=64, v=4, ct=8)
    return shape, AutoTuner(platform).tune(shape)


class TestPlatformFingerprint:
    def test_stable_across_instances(self):
        assert platform_fingerprint(get_platform("upmem")) == platform_fingerprint(
            get_platform("upmem")
        )

    def test_differs_between_platforms(self):
        assert platform_fingerprint(get_platform("upmem")) != platform_fingerprint(
            get_platform("aim")
        )

    def test_sensitive_to_any_constant(self, platform):
        from dataclasses import replace

        tweaked = replace(platform, kernel_launch_s=platform.kernel_launch_s * 2)
        assert platform_fingerprint(platform) != platform_fingerprint(tweaked)


class TestMappingCacheRoundTrip:
    def test_put_get_equality(self, platform, tuned, tmp_path):
        shape, result = tuned
        cache = MappingCache(str(tmp_path))
        assert cache.get(platform, shape) is None
        path = cache.put(platform, result)
        assert os.path.exists(path)
        loaded = cache.get(platform, shape)
        assert loaded.mapping == result.mapping
        assert loaded.latency == result.latency
        assert loaded.candidates_evaluated == result.candidates_evaluated
        assert len(cache) == 1

    def test_amortized_entries_do_not_collide(self, platform, tuned, tmp_path):
        shape, result = tuned
        cache = MappingCache(str(tmp_path))
        cache.put(platform, result, amortize=True)
        assert cache.get(platform, shape) is None
        assert cache.get(platform, shape, amortize=True) is not None

    def test_other_platform_misses(self, tuned, tmp_path):
        shape, result = tuned
        cache = MappingCache(str(tmp_path))
        cache.put(get_platform("upmem"), result)
        assert cache.get(get_platform("aim"), shape) is None

    def test_missing_directory_is_a_miss(self, platform, tuned):
        shape, _ = tuned
        cache = MappingCache("/nonexistent/mapping-cache")
        assert cache.get(platform, shape) is None
        assert len(cache) == 0


class TestMappingCacheFaults:
    def _entry_path(self, platform, tuned, tmp_path):
        shape, result = tuned
        cache = MappingCache(str(tmp_path))
        cache.put(platform, result)
        return cache, shape, cache.entry_path(platform, shape)

    def test_corrupt_json_skipped_with_warning(self, platform, tuned, tmp_path):
        cache, shape, path = self._entry_path(platform, tuned, tmp_path)
        with open(path, "w") as fh:
            fh.write("{ not json")
        with pytest.warns(RuntimeWarning, match="unreadable entry"):
            assert cache.get(platform, shape) is None

    def test_wrong_format_version_skipped(self, platform, tuned, tmp_path):
        cache, shape, path = self._entry_path(platform, tuned, tmp_path)
        with open(path) as fh:
            payload = json.load(fh)
        payload["version"] = FORMAT_VERSION + 10
        with open(path, "w") as fh:
            json.dump(payload, fh)
        with pytest.warns(RuntimeWarning, match="format version"):
            assert cache.get(platform, shape) is None

    def test_fingerprint_mismatch_skipped(self, platform, tuned, tmp_path):
        cache, shape, path = self._entry_path(platform, tuned, tmp_path)
        with open(path) as fh:
            payload = json.load(fh)
        payload["fingerprint"] = "0" * 16
        with open(path, "w") as fh:
            json.dump(payload, fh)
        with pytest.warns(RuntimeWarning, match="fingerprint"):
            assert cache.get(platform, shape) is None

    def test_malformed_entry_skipped(self, platform, tuned, tmp_path):
        cache, shape, path = self._entry_path(platform, tuned, tmp_path)
        with open(path) as fh:
            payload = json.load(fh)
        del payload["entry"]["mapping"]
        with open(path, "w") as fh:
            json.dump(payload, fh)
        with pytest.warns(RuntimeWarning, match="malformed entry"):
            assert cache.get(platform, shape) is None

    def test_rejections_are_counted(self, platform, tuned, tmp_path):
        cache, shape, path = self._entry_path(platform, tuned, tmp_path)
        with open(path, "w") as fh:
            fh.write("")
        counter = obs.get_registry().counter("mapping_cache.rejected")
        before = counter.value
        with pytest.warns(RuntimeWarning):
            cache.get(platform, shape)
        assert counter.value == before + 1


class TestMappingCacheConcurrency:
    def test_concurrent_writers_never_torch_the_entry(
        self, platform, tuned, tmp_path
    ):
        """Many threads rewriting one entry: readers always see a full file."""
        shape, result = tuned
        cache = MappingCache(str(tmp_path))
        cache.put(platform, result)
        errors = []

        def writer():
            for _ in range(25):
                cache.put(platform, result)

        def reader():
            for _ in range(50):
                loaded = cache.get(platform, shape)
                if loaded is None or loaded.mapping != result.mapping:
                    errors.append("torn or missing entry")

        threads = [threading.Thread(target=writer) for _ in range(4)]
        threads += [threading.Thread(target=reader) for _ in range(2)]
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert not errors
        # A torn read would have warned through the reject path.
        assert [w for w in caught if issubclass(w.category, RuntimeWarning)] == []
        # No stray temp files survive the stampede.
        leftovers = [n for n in os.listdir(str(tmp_path)) if ".tmp-" in n]
        assert leftovers == []


class TestTunerCacheIntegration:
    def test_warm_cache_evaluates_zero_candidates(self, platform, tmp_path):
        shape = LUTShape(n=512, h=64, f=128, v=4, ct=8)
        cache = MappingCache(str(tmp_path))
        cold = AutoTuner(platform, cache=cache).tune(shape)

        counter = obs.get_registry().counter("tuner.candidates_evaluated")
        before = counter.value
        warm = AutoTuner(platform, cache=cache).tune(shape)  # fresh tuner
        assert counter.value == before  # acceptance: zero candidates
        assert warm.mapping == cold.mapping
        assert warm.latency == cold.latency

    def test_parallel_tuner_fills_cache_too(self, platform, tmp_path):
        shape = LUTShape(n=256, h=32, f=64, v=4, ct=8)
        cache = MappingCache(str(tmp_path))
        AutoTuner(platform, jobs=2, cache=cache).tune(shape)
        assert cache.get(platform, shape) is not None

    def test_amortize_modes_cached_separately(self, platform, tmp_path):
        shape = LUTShape(n=256, h=32, f=64, v=4, ct=8)
        cache = MappingCache(str(tmp_path))
        full = AutoTuner(platform, cache=cache).tune(shape)
        amortized = AutoTuner(
            platform, amortize_lut_distribution=True, cache=cache
        ).tune(shape)
        assert amortized.cost < full.cost
        assert len(cache) == 2


class TestMappingStoreHardening:
    def test_save_is_atomic_no_temp_left(self, platform, tuned, tmp_path):
        shape, result = tuned
        path = str(tmp_path / "maps.json")
        store = MappingStore()
        store.put(platform.name, result)
        store.save(path)
        assert MappingStore(path).get(platform.name, shape) is not None
        assert [n for n in os.listdir(str(tmp_path)) if ".tmp-" in n] == []

    def test_constructor_is_lenient_on_corruption(self, tmp_path):
        path = str(tmp_path / "bad.json")
        with open(path, "w") as fh:
            fh.write("{ nope")
        with pytest.warns(RuntimeWarning, match="unusable mapping store"):
            store = MappingStore(path)
        assert len(store) == 0

    def test_constructor_is_lenient_on_version(self, tmp_path):
        path = str(tmp_path / "old.json")
        with open(path, "w") as fh:
            json.dump({"version": 1, "entries": {}}, fh)
        with pytest.warns(RuntimeWarning, match="unusable mapping store"):
            store = MappingStore(path)
        assert len(store) == 0

    def test_explicit_load_stays_strict(self, tmp_path):
        path = str(tmp_path / "old.json")
        with open(path, "w") as fh:
            json.dump({"version": 99, "entries": {}}, fh)
        with pytest.raises(ValueError):
            MappingStore().load(path)
        corrupt = str(tmp_path / "corrupt.json")
        with open(corrupt, "w") as fh:
            fh.write("not json at all")
        with pytest.raises(ValueError):
            MappingStore().load(corrupt)


class TestServingWarmup:
    def test_server_loads_mappings_instead_of_retuning(self, tmp_path):
        from repro.baselines import wimpy_host
        from repro.engine.serving import GenerationServer

        platform = get_platform("upmem")
        config_kwargs = dict(prompt_len=32, generate_len=4, batch_size=2)
        from repro.workloads import EVAL_MODELS

        config = EVAL_MODELS["bert-base"].with_(seq_len=32, batch_size=2)
        cache_dir = str(tmp_path / "serving-cache")

        offline = GenerationServer(platform, wimpy_host(), mapping_cache=cache_dir)
        offline.warmup(config, prompt_len=32, batch_size=2)

        counter = obs.get_registry().counter("tuner.candidates_evaluated")
        server = GenerationServer(platform, wimpy_host(), mapping_cache=cache_dir)
        before = counter.value
        report = server.run(config, **config_kwargs)
        assert counter.value == before  # every mapping came from the cache
        assert report.request_latency_s > 0
