"""Tests for the persistent benchmark baseline store, the robust
regression detector, and the ``bench`` CLI subcommand.

ISSUE acceptance: ``bench compare`` must detect a synthetic 20% slowdown
while passing on identical re-runs.
"""

import json
import os

import pytest

from repro import cli
from repro.obs.baseline import (
    BaselineStore,
    BenchRecord,
    current_git_sha,
    detect_regression,
    host_fingerprint,
    robust_stats,
)


class TestRobustStats:
    def test_median_and_mad(self):
        mid, mad = robust_stats([1.0, 2.0, 3.0, 4.0, 100.0])
        assert mid == 3.0
        assert mad == 1.0  # |1-3|,|2-3|,|3-3|,|4-3|,|97| -> median 1

    def test_empty_is_nan(self):
        mid, mad = robust_stats([])
        assert mid != mid and mad != mad  # NaN


class TestDetectRegression:
    BASE = [1.00, 1.01, 0.99, 1.00, 1.02]

    def test_synthetic_20pct_slowdown_is_regression(self):
        verdict = detect_regression("b", 1.20, self.BASE, threshold=0.10)
        assert verdict.status == "regression"
        assert verdict.is_regression
        assert verdict.delta_rel == pytest.approx(0.20, abs=0.01)

    def test_identical_rerun_is_ok(self):
        verdict = detect_regression("b", 1.00, self.BASE, threshold=0.10)
        assert verdict.status == "ok"
        assert not verdict.is_regression

    def test_large_speedup_is_improvement(self):
        verdict = detect_regression("b", 0.50, self.BASE, threshold=0.10)
        assert verdict.status == "improvement"

    def test_fewer_than_two_baselines_warn_only(self):
        for baselines in ([], [1.0]):
            verdict = detect_regression("b", 99.0, baselines)
            assert verdict.status == "insufficient-baseline"
            assert not verdict.is_regression

    def test_mad_band_absorbs_noise(self):
        # Noisy history: MAD band wider than the relative threshold.
        noisy = [1.0, 1.4, 0.7, 1.3, 0.8]
        verdict = detect_regression("b", 1.15, noisy, threshold=0.01)
        assert verdict.status == "ok"

    def test_higher_is_better_flips_direction(self):
        verdict = detect_regression(
            "tput", 0.80, self.BASE, threshold=0.10, lower_is_better=False
        )
        assert verdict.status == "regression"
        verdict = detect_regression(
            "tput", 1.50, self.BASE, threshold=0.10, lower_is_better=False
        )
        assert verdict.status == "improvement"

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            detect_regression("b", 1.0, self.BASE, threshold=-0.1)

    def test_render_and_jsonable(self):
        verdict = detect_regression("b", 1.20, self.BASE, threshold=0.10)
        assert "regression" in verdict.render()
        payload = json.loads(json.dumps(verdict.to_jsonable()))
        assert payload["bench_id"] == "b"
        assert payload["status"] == "regression"


class TestBaselineStore:
    def test_record_and_read_round_trip(self, tmp_path):
        store = BaselineStore(str(tmp_path / "store"))
        rec = store.record("sim.kernel", 1.25, fingerprint="abc",
                           meta={"shape": "x"})
        (back,) = store.records("sim.kernel", "abc")
        assert back == rec
        assert back.meta["shape"] == "x"
        assert back.timestamp > 0

    def test_append_only_history_in_order(self, tmp_path):
        store = BaselineStore(str(tmp_path / "store"))
        for v in (1.0, 2.0, 3.0):
            store.record("b", v, fingerprint="f")
        assert [r.value for r in store.records("b", "f")] == [1.0, 2.0, 3.0]

    def test_fingerprints_do_not_mix(self, tmp_path):
        store = BaselineStore(str(tmp_path / "store"))
        store.record("b", 1.0, fingerprint="hostA")
        store.record("b", 2.0, fingerprint="hostB")
        assert [r.value for r in store.records("b", "hostA")] == [1.0]
        assert store.path_for("b", "hostA") != store.path_for("b", "hostB")

    def test_corrupt_lines_skipped(self, tmp_path):
        store = BaselineStore(str(tmp_path / "store"))
        path = store.append(
            BenchRecord(bench_id="b", value=1.0, fingerprint="f")
        )
        with open(path, "a") as fh:
            fh.write("not json\n{\"half\": \n")
        store.record("b", 2.0, fingerprint="f")
        assert [r.value for r in store.records("b", "f")] == [1.0, 2.0]

    def test_baseline_values_excludes_current_sha(self, tmp_path):
        store = BaselineStore(str(tmp_path / "store"))
        store.record("b", 1.0, git_sha="old1", fingerprint="f")
        store.record("b", 1.1, git_sha="old2", fingerprint="f")
        store.record("b", 9.9, git_sha="cur", fingerprint="f")
        assert store.baseline_values("b", "f", exclude_sha="cur") == [1.0, 1.1]

    def test_bench_ids_enumerates_pairs(self, tmp_path):
        store = BaselineStore(str(tmp_path / "store"))
        assert store.bench_ids() == []
        store.record("b1", 1.0, fingerprint="f1")
        store.record("b2", 1.0, fingerprint="f2")
        assert store.bench_ids() == [("b1", "f1"), ("b2", "f2")]

    def test_missing_store_reads_empty(self, tmp_path):
        store = BaselineStore(str(tmp_path / "nowhere"))
        assert store.records("b", "f") == []


class TestFingerprints:
    def test_stable_and_extra_sensitive(self):
        assert host_fingerprint() == host_fingerprint()
        assert host_fingerprint({"platform": "upmem"}) != host_fingerprint(
            {"platform": "aim"}
        )
        assert len(host_fingerprint()) == 12

    def test_current_git_sha_in_this_repo(self):
        sha = current_git_sha(os.path.dirname(os.path.dirname(__file__)))
        assert sha == "unknown" or len(sha) >= 7


def _fake_registry(value_box):
    """A one-bench registry whose 'measurement' reads from value_box."""
    def run(platform_name):
        return value_box["value"], {"synthetic": True}

    return {"synthetic.bench": ("modeled", run)}


@pytest.fixture()
def synthetic_bench(monkeypatch):
    box = {"value": 1.0}
    monkeypatch.setattr(cli, "_BENCH_REGISTRY", _fake_registry(box))
    return box


class TestBenchCLI:
    def test_run_appends_and_list_shows(self, synthetic_bench, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert cli.main(["bench", "run", "--store", store]) == 0
        assert cli.main(["bench", "list", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "synthetic.bench" in out

    def test_compare_detects_20pct_slowdown(
        self, synthetic_bench, tmp_path, capsys
    ):
        store = str(tmp_path / "store")
        assert cli.main(["bench", "run", "--store", store]) == 0
        assert cli.main(["bench", "run", "--store", store]) == 0
        # Identical re-run passes...
        assert cli.main(["bench", "compare", "--store", store]) == 0
        # ...a 20% slowdown against a 2% threshold fails the gate.
        synthetic_bench["value"] = 1.20
        code = cli.main(["bench", "compare", "--store", store])
        assert code == 1
        assert "regression" in capsys.readouterr().out

    def test_compare_json_writes_bench_file(
        self, synthetic_bench, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        store = str(tmp_path / "store")
        for _ in range(2):
            assert cli.main(["bench", "run", "--store", store]) == 0
        out_path = str(tmp_path / "BENCH_out.json")
        assert cli.main(
            ["bench", "compare", "--store", store, "--json", out_path]
        ) == 0
        with open(out_path) as fh:
            payload = json.load(fh)
        assert payload["regressions"] == 0
        (verdict,) = payload["verdicts"]
        assert verdict["bench_id"] == "synthetic.bench"
        assert verdict["status"] == "ok"

    def test_compare_json_default_name_uses_sha(
        self, synthetic_bench, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        store = str(tmp_path / "store")
        assert cli.main(["bench", "compare", "--store", store, "--json"]) == 0
        written = [p for p in os.listdir(tmp_path) if p.startswith("BENCH_")]
        assert len(written) == 1 and written[0].endswith(".json")

    def test_compare_empty_store_warn_only(
        self, synthetic_bench, tmp_path, capsys
    ):
        store = str(tmp_path / "store")
        assert cli.main(["bench", "compare", "--store", store]) == 0
        assert "insufficient-baseline" in capsys.readouterr().out

    def test_compare_record_appends_after_comparing(
        self, synthetic_bench, tmp_path, capsys
    ):
        store = str(tmp_path / "store")
        for _ in range(3):
            assert cli.main(
                ["bench", "compare", "--store", store, "--record"]
            ) == 0
        assert cli.main(["bench", "list", "--store", store]) == 0
        # Three comparisons each appended one record.
        assert " 3" in capsys.readouterr().out

    def test_threshold_override(self, synthetic_bench, tmp_path):
        store = str(tmp_path / "store")
        for _ in range(2):
            assert cli.main(["bench", "run", "--store", store]) == 0
        synthetic_bench["value"] = 1.20
        assert cli.main(
            ["bench", "compare", "--store", store, "--threshold", "0.5"]
        ) == 0

    def test_empty_suite_is_an_error(self, tmp_path, monkeypatch):
        monkeypatch.setattr(cli, "_BENCH_REGISTRY", {})
        code = cli.main(
            ["bench", "run", "--store", str(tmp_path / "store")]
        )
        assert code == 2

    def test_real_modeled_suite_records(self, tmp_path, capsys):
        """The shipped modeled suite runs end-to-end (no monkeypatching)."""
        store = str(tmp_path / "store")
        assert cli.main(
            ["bench", "run", "--store", store, "--suite", "modeled"]
        ) == 0
        out = capsys.readouterr().out
        assert "sim.lut-kernel" in out
        assert "engine.bert-base" in out
