"""End-to-end checks that the subsystems record coherent telemetry."""

import numpy as np
import pytest

from repro import obs
from repro.baselines import wimpy_host
from repro.core import LUTShape
from repro.engine import GenerationServer, PIMDLEngine
from repro.mapping import AutoTuner, TuneProgress
from repro.mapping.space import enumerate_sub_lut_tilings
from repro.pim import get_platform
from repro.workloads import bert_base


@pytest.fixture()
def fresh_obs():
    obs.reset()
    yield
    obs.reset()


@pytest.fixture(scope="module")
def platform():
    return get_platform("upmem")


SHAPE = LUTShape(n=512, h=64, f=128, v=4, ct=8)

#: One-layer BERT-ish config keeps the engine tests fast while still
#: exercising every op category.
SMALL_CONFIG = bert_base(seq_len=128, batch_size=4).with_(num_layers=1)


class TestTunerTelemetry:
    def test_counters_match_mapping_space_size(self, fresh_obs, platform):
        result = AutoTuner(platform).tune(SHAPE)
        snap = obs.get_registry().snapshot()
        tilings = len(list(enumerate_sub_lut_tilings(SHAPE, platform)))
        assert snap["tuner.candidates_evaluated"]["value"] == tilings
        assert result.candidates_evaluated == tilings
        pruned = snap["tuner.tilings_pruned"]["value"]
        assert 0 <= pruned < tilings
        assert snap["tuner.best_cost_s"]["value"] == pytest.approx(result.cost)
        assert snap["tuner.tune_calls"]["value"] == 1

    def test_cache_hit_counter(self, fresh_obs, platform):
        tuner = AutoTuner(platform)
        tuner.tune(SHAPE)
        before = obs.get_registry().snapshot()["tuner.candidates_evaluated"]["value"]
        tuner.tune(SHAPE)
        snap = obs.get_registry().snapshot()
        assert snap["tuner.cache_hits"]["value"] == 1
        assert snap["tuner.candidates_evaluated"]["value"] == before

    def test_progress_callback_ticks_every_candidate(self, fresh_obs, platform):
        ticks = []
        result = AutoTuner(platform, progress_callback=ticks.append).tune(SHAPE)
        assert len(ticks) == result.candidates_evaluated
        assert all(isinstance(t, TuneProgress) for t in ticks)
        assert [t.evaluated for t in ticks] == list(range(1, len(ticks) + 1))
        assert ticks[-1].best_cost == pytest.approx(result.cost)

    def test_exhaustive_counts_every_mapping(self, fresh_obs, platform):
        small = LUTShape(n=64, h=16, f=32, v=4, ct=4)
        result = AutoTuner(platform, max_micro_kernels=50).tune_exhaustive(small)
        snap = obs.get_registry().snapshot()
        assert snap["tuner.candidates_evaluated"]["value"] == (
            result.candidates_evaluated
        )
        assert result.candidates_evaluated > len(
            list(enumerate_sub_lut_tilings(small, platform))
        )

    def test_per_candidate_spans_nest_under_tune_root(self, fresh_obs, platform):
        AutoTuner(platform).tune(SHAPE)
        spans = obs.get_tracer().finished_spans()
        root = [s for s in spans if s.name == "tuner.tune"]
        assert len(root) == 1
        tilings = [s for s in spans if s.name == "tuner.tiling"]
        assert len(tilings) == root[0].attributes["candidates"]
        assert all(s.parent_id == root[0].span_id for s in tilings)


class TestEngineTelemetry:
    def test_per_op_spans_carry_engine_and_category(self, fresh_obs, platform):
        report = PIMDLEngine(platform, wimpy_host()).run(SMALL_CONFIG)
        spans = obs.get_tracer().finished_spans()
        op_spans = [s for s in spans if s.name.startswith("op:")]
        assert len(op_spans) == len(report.ops)
        categories = {s.attributes["category"] for s in op_spans}
        assert {"lut", "ccs", "attention", "elementwise"} <= categories
        root = [s for s in spans if s.name == "engine.run"]
        assert len(root) == 1
        assert root[0].attributes["model_total_s"] == pytest.approx(report.total_s)
        snap = obs.get_registry().snapshot()
        assert snap["engine.ops"]["value"] == len(report.ops)
        assert snap["engine.op_model_seconds"]["count"] == len(report.ops)

    def test_serving_records_request_spans_and_counters(self, fresh_obs, platform):
        server = GenerationServer(platform, wimpy_host())
        report = server.run(SMALL_CONFIG, generate_len=4)
        spans = {s.name for s in obs.get_tracer().finished_spans()}
        assert {"serving.request", "serving.prefill", "serving.decode"} <= spans
        snap = obs.get_registry().snapshot()
        assert snap["serving.requests"]["value"] == 1
        assert snap["serving.generated_tokens"]["value"] == (
            report.batch_size * report.generate_len
        )
        assert snap["serving.request_model_seconds"]["count"] == 1


class TestCalibrationTelemetry:
    def test_per_step_loss_series(self, fresh_obs):
        from repro.core import ELUTNNCalibrator, convert_to_lut_nn
        from repro.nn import TextClassifier

        rng = np.random.default_rng(0)
        model = TextClassifier(
            vocab_size=30, max_seq_len=8, num_classes=3,
            dim=16, num_layers=2, num_heads=2, rng=rng,
        )
        tokens = rng.integers(0, 30, size=(16, 8))
        labels = rng.integers(0, 3, size=16)
        convert_to_lut_nn(model, [tokens], v=2, ct=4, rng=rng)
        batches = [(tokens, labels)]
        result = ELUTNNCalibrator(lr=1e-3).calibrate(model, batches, epochs=6)
        snap = obs.get_registry().snapshot()
        assert snap["calibration.steps"]["value"] == result.steps == 6
        assert snap["calibration.loss"]["points"] == [
            [i, v] for i, v in enumerate(result.loss_history)
        ]
        assert snap["calibration.last_loss"]["value"] == result.final_loss
        names = [s.name for s in obs.get_tracer().finished_spans()]
        assert "calibration.calibrate" in names


class TestReportAggregations:
    def test_per_category_seconds_with_device_filter(self, fresh_obs, platform):
        report = PIMDLEngine(platform, wimpy_host()).run(SMALL_CONFIG)
        cats = report.per_category_seconds()
        assert sum(cats.values()) == pytest.approx(
            report.total_s + report.overlap_hidden_s
        )
        assert report.per_category_seconds(device="pim") == {"lut": cats["lut"]}
        host_cats = report.per_category_seconds(device="host")
        assert "lut" not in host_cats and "ccs" in host_cats
        devices = report.per_device_seconds()
        assert devices["host"] == pytest.approx(report.host_s)
        assert devices["pim"] == pytest.approx(report.pim_s)
        shares = report.category_shares()
        assert sum(shares.values()) == pytest.approx(1.0)
        # Back-compat alias stays in place.
        assert report.category_breakdown() == cats

    def test_to_jsonable_round_trips(self, fresh_obs, platform):
        import json

        report = PIMDLEngine(platform, wimpy_host()).run(SMALL_CONFIG)
        payload = json.loads(json.dumps(obs.to_jsonable(report.to_jsonable())))
        assert payload["engine"] == report.engine
        assert payload["total_s"] == pytest.approx(report.total_s)
        assert len(payload["ops"]) == len(report.ops)
        assert payload["per_category_seconds"]["lut"] > 0
